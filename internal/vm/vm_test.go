package vm

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/isa"
)

// buildImage assembles a program at base 0x1000 and returns the image plus
// the label map.
func buildImage(t testing.TB, build func(a *asm.Assembler)) (*image.Image, map[string]uint32) {
	t.Helper()
	a := asm.New(0x1000)
	build(a)
	code, labels, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := labels["main"]
	if !ok {
		entry = 0x1000
	}
	return &image.Image{Base: 0x1000, Entry: entry, Code: code}, labels
}

func run(t testing.TB, im *image.Image, cfg Config) RunResult {
	t.Helper()
	cfg.Image = im
	v, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return v.Run()
}

func TestArithmeticAndExit(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.MovRI(isa.EAX, 6)
		a.MovRI(isa.ECX, 7)
		a.MulRR(isa.EAX, isa.ECX)
		a.Sys(isa.SysExit)
	})
	res := run(t, im, Config{})
	if res.Outcome != OutcomeExit || res.ExitCode != 42 {
		t.Fatalf("res = %+v", res)
	}
}

func TestLoopAndFlags(t *testing.T) {
	// Sum 1..10 via a conditional backward branch.
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.MovRI(isa.EAX, 0)
		a.MovRI(isa.ECX, 1)
		a.Label("loop")
		a.AddRR(isa.EAX, isa.ECX)
		a.AddRI(isa.ECX, 1)
		a.CmpRI(isa.ECX, 10)
		a.Jle("loop")
		a.Sys(isa.SysExit)
	})
	res := run(t, im, Config{})
	if res.ExitCode != 55 {
		t.Fatalf("sum = %d, want 55", res.ExitCode)
	}
}

func TestSignedVsUnsignedBranches(t *testing.T) {
	// -1 < 1 signed, but 0xFFFFFFFF > 1 unsigned.
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.MovRI(isa.EAX, -1)
		a.CmpRI(isa.EAX, 1)
		a.Jl("signedLess")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
		a.Label("signedLess")
		a.CmpRI(isa.EAX, 1)
		a.Ja("unsignedGreater")
		a.MovRI(isa.EAX, 1)
		a.Sys(isa.SysExit)
		a.Label("unsignedGreater")
		a.MovRI(isa.EAX, 99)
		a.Sys(isa.SysExit)
	})
	res := run(t, im, Config{})
	if res.ExitCode != 99 {
		t.Fatalf("exit = %d, want 99", res.ExitCode)
	}
}

func TestCallRetAndStack(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 5)
		a.Call("double")
		a.Call("double")
		a.Sys(isa.SysExit)
		a.Label("double")
		a.AddRR(isa.EAX, isa.EAX)
		a.Ret()
	})
	res := run(t, im, Config{})
	if res.ExitCode != 20 {
		t.Fatalf("exit = %d, want 20", res.ExitCode)
	}
}

func TestPushPop(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.MovRI(isa.EAX, 11)
		a.Push(isa.EAX)
		a.PushI(22)
		a.Pop(isa.ECX) // 22
		a.Pop(isa.EDX) // 11
		a.MovRR(isa.EAX, isa.ECX)
		a.AddRR(isa.EAX, isa.EDX)
		a.Sys(isa.SysExit)
	})
	if res := run(t, im, Config{}); res.ExitCode != 33 {
		t.Fatalf("exit = %d, want 33", res.ExitCode)
	}
}

func TestIndirectCallThroughMemory(t *testing.T) {
	// A static dispatch table in the code region, CALLM through it.
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovLabel(isa.EBX, "table")
		a.CallM(asm.M(isa.EBX, 4)) // second entry
		a.Sys(isa.SysExit)
		a.Label("f1")
		a.MovRI(isa.EAX, 1)
		a.Ret()
		a.Label("f2")
		a.MovRI(isa.EAX, 2)
		a.Ret()
		a.Label("table")
		a.WordLabel("f1")
		a.WordLabel("f2")
	})
	if res := run(t, im, Config{}); res.ExitCode != 2 {
		t.Fatalf("exit = %d, want 2", res.ExitCode)
	}
}

func TestHeapSyscalls(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.MovRI(isa.EAX, 16)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EBX, isa.EAX) // ptr
		a.MovRI(isa.ECX, 1234)
		a.Store(asm.M(isa.EBX, 0), isa.ECX)
		a.Load(isa.EAX, asm.M(isa.EBX, 0))
		a.Sys(isa.SysExit)
	})
	if res := run(t, im, Config{}); res.ExitCode != 1234 {
		t.Fatalf("exit = %d, want 1234", res.ExitCode)
	}
}

func TestInputOutputSyscalls(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.MovRI(isa.EAX, 8)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EBX, isa.EAX)
		a.MovRI(isa.ECX, 5)
		a.Sys(isa.SysRead) // read up to 5 bytes
		a.MovRR(isa.EDX, isa.EAX)
		a.MovRR(isa.EAX, isa.EBX)
		a.MovRR(isa.ECX, isa.EDX)
		a.Sys(isa.SysWrite) // echo them
		a.Sys(isa.SysInAvail)
		a.Sys(isa.SysExit) // exit code = remaining input
	})
	res := run(t, im, Config{Input: []byte("hello!!")})
	if !bytes.Equal(res.Output, []byte("hello")) {
		t.Errorf("output = %q", res.Output)
	}
	if res.ExitCode != 2 {
		t.Errorf("remaining = %d, want 2", res.ExitCode)
	}
}

func TestCrashOnWildMemory(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.MovRI(isa.EBX, 0x41414141)
		a.Load(isa.EAX, asm.M(isa.EBX, 0))
		a.Sys(isa.SysExit)
	})
	res := run(t, im, Config{})
	if res.Outcome != OutcomeCrash || res.Crash == nil {
		t.Fatalf("res = %+v", res)
	}
}

func TestCrashOnHalt(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) { a.Halt() })
	if res := run(t, im, Config{}); res.Outcome != OutcomeCrash {
		t.Fatalf("halt outcome = %v", res.Outcome)
	}
}

func TestCrashOnStepLimit(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.Label("spin")
		a.Jmp("spin")
	})
	res := run(t, im, Config{MaxSteps: 1000})
	if res.Outcome != OutcomeCrash || res.Steps < 1000 {
		t.Fatalf("res = %+v", res)
	}
}

func TestCrashOnJumpOutsideCode(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.MovRI(isa.EAX, 0x20000000)
		a.JmpR(isa.EAX)
	})
	if res := run(t, im, Config{}); res.Outcome != OutcomeCrash {
		t.Fatalf("outcome = %v", res.Outcome)
	}
}

// recordingPlugin records decoded blocks and counts hook executions.
type recordingPlugin struct {
	blocks []uint32
	execs  int
}

func (p *recordingPlugin) Name() string { return "recorder" }
func (p *recordingPlugin) Instrument(v *VM, b *Block) {
	p.blocks = append(p.blocks, b.Start)
	for i := range b.Insts {
		b.AddHook(i, PrioTrace, func(ctx *Ctx) error {
			p.execs++
			return nil
		})
	}
}

func TestPluginInstrumentation(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.MovRI(isa.EAX, 1)
		a.Sys(isa.SysExit)
	})
	p := &recordingPlugin{}
	res := run(t, im, Config{Plugins: []Plugin{p}})
	if res.Outcome != OutcomeExit {
		t.Fatal(res.Outcome)
	}
	if len(p.blocks) != 1 || p.blocks[0] != 0x1000 {
		t.Errorf("blocks = %v", p.blocks)
	}
	if p.execs != 2 || res.HookRuns != 2 {
		t.Errorf("hook execs = %d / %d", p.execs, res.HookRuns)
	}
}

func TestBlockCaching(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.MovRI(isa.ECX, 100)
		a.Label("loop")
		a.SubRI(isa.ECX, 1)
		a.CmpRI(isa.ECX, 0)
		a.Jne("loop")
		a.Sys(isa.SysExit)
	})
	p := &recordingPlugin{}
	res := run(t, im, Config{Plugins: []Plugin{p}})
	if res.Outcome != OutcomeExit {
		t.Fatal(res.Outcome)
	}
	// The loop body must be decoded once, not per iteration.
	if len(p.blocks) != res.Blocks || len(p.blocks) > 3 {
		t.Errorf("blocks decoded = %v (res.Blocks=%d)", p.blocks, res.Blocks)
	}
}

func TestPatchMutatesState(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.MovRI(isa.EAX, -5)
		a.Label("use")
		a.MovRR(isa.EBX, isa.EAX)
		a.MovRR(isa.EAX, isa.EBX)
		a.Sys(isa.SysExit)
	})
	// A lower-bound style enforcement: at "use", if EAX < 0 then EAX = 0.
	patch := &Patch{
		ID: "clamp", Addr: labels["use"], Prio: PrioRepair,
		Hook: func(ctx *Ctx) error {
			if int32(ctx.Reg(isa.EAX)) < 0 {
				ctx.SetReg(isa.EAX, 0)
			}
			return nil
		},
	}
	res := run(t, im, Config{Patches: []*Patch{patch}})
	if res.ExitCode != 0 {
		t.Fatalf("exit = %d, want clamped 0", int32(res.ExitCode))
	}
}

func TestPatchSkipInstruction(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 7)
		a.Label("clobber")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	patch := &Patch{
		ID: "skip", Addr: labels["clobber"], Prio: PrioRepair,
		Hook: func(ctx *Ctx) error { ctx.Skip(); return nil },
	}
	if res := run(t, im, Config{Patches: []*Patch{patch}}); res.ExitCode != 7 {
		t.Fatalf("exit = %d, want 7", res.ExitCode)
	}
}

func TestPatchOverrideIndirectTarget(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 0x20000000) // bogus target
		a.Label("site")
		a.CallR(isa.EAX)
		a.Sys(isa.SysExit)
		a.Label("good")
		a.MovRI(isa.EAX, 77)
		a.Ret()
	})
	patch := &Patch{
		ID: "redirect", Addr: labels["site"], Prio: PrioRepair,
		Hook: func(ctx *Ctx) error {
			ctx.OverrideTarget(labels["good"])
			return nil
		},
	}
	if res := run(t, im, Config{Patches: []*Patch{patch}}); res.ExitCode != 77 {
		t.Fatalf("res exit = %d, want 77", res.ExitCode)
	}
}

func TestPatchJumpDisposition(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 0)
		a.Label("here")
		a.MovRI(isa.EAX, 1)
		a.Sys(isa.SysExit)
		a.Label("elsewhere")
		a.MovRI(isa.EAX, 42)
		a.Sys(isa.SysExit)
	})
	patch := &Patch{
		ID: "jump", Addr: labels["here"], Prio: PrioRepair,
		Hook: func(ctx *Ctx) error { ctx.Jump(labels["elsewhere"]); return nil },
	}
	if res := run(t, im, Config{Patches: []*Patch{patch}}); res.ExitCode != 42 {
		t.Fatalf("exit = %d, want 42", res.ExitCode)
	}
}

func TestApplyRemovePatchMidRun(t *testing.T) {
	// A patch applied from a hook takes effect on the *next* execution of
	// the patched code (cache ejection), without restarting the machine.
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.MovRI(isa.ESI, 0) // loop counter
		a.MovRI(isa.EDI, 0) // accumulator
		a.Label("loop")
		a.Label("inc")
		a.AddRI(isa.EDI, 1)
		a.AddRI(isa.ESI, 1)
		a.CmpRI(isa.ESI, 4)
		a.Jne("loop")
		a.MovRR(isa.EAX, isa.EDI)
		a.Sys(isa.SysExit)
	})
	v, err := New(Config{Image: im})
	if err != nil {
		t.Fatal(err)
	}
	// Trigger plugin: after the 2nd iteration, install a skip patch on inc.
	iter := 0
	trigger := &Patch{
		ID: "trigger", Addr: labels["loop"], Prio: PrioMonitor,
		Hook: func(ctx *Ctx) error {
			iter++
			if iter == 3 {
				return ctx.VM.ApplyPatch(&Patch{
					ID: "skipinc", Addr: labels["inc"], Prio: PrioRepair,
					Hook: func(c *Ctx) error { c.Skip(); return nil },
				})
			}
			return nil
		},
	}
	if err := v.ApplyPatch(trigger); err != nil {
		t.Fatal(err)
	}
	res := v.Run()
	// The patch is installed during iteration 3, whose block is already
	// executing; it takes effect when the block is next fetched. So
	// iterations 1-3 increment EDI and iteration 4 is skipped.
	if res.ExitCode != 3 {
		t.Fatalf("exit = %d, want 3", res.ExitCode)
	}
}

func TestRemovePatch(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 7)
		a.Sys(isa.SysExit)
	})
	v, err := New(Config{Image: im})
	if err != nil {
		t.Fatal(err)
	}
	p := &Patch{ID: "p", Addr: labels["main"], Prio: PrioRepair,
		Hook: func(ctx *Ctx) error { ctx.SetReg(isa.EAX, 1); return nil }}
	if err := v.ApplyPatch(p); err != nil {
		t.Fatal(err)
	}
	if got := v.PatchIDs(); len(got) != 1 || got[0] != "p" {
		t.Errorf("PatchIDs = %v", got)
	}
	v.RemovePatch("p")
	v.RemovePatch("p") // idempotent
	if got := v.PatchIDs(); len(got) != 0 {
		t.Errorf("PatchIDs after remove = %v", got)
	}
	if res := v.Run(); res.ExitCode != 7 {
		t.Fatalf("patch still active: exit = %d", res.ExitCode)
	}
}

func TestDuplicatePatchIDRejected(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) { a.Sys(isa.SysExit) })
	v, _ := New(Config{Image: im})
	p := &Patch{ID: "x", Addr: 0x1000, Hook: func(ctx *Ctx) error { return nil }}
	if err := v.ApplyPatch(p); err != nil {
		t.Fatal(err)
	}
	if err := v.ApplyPatch(&Patch{ID: "x", Addr: 0x1000, Hook: p.Hook}); err == nil {
		t.Error("duplicate patch ID accepted")
	}
}

func TestHookFailureStopsRun(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.Label("bad")
		a.MovRI(isa.EAX, 1)
		a.Sys(isa.SysExit)
	})
	p := &Patch{ID: "detect", Addr: labels["bad"], Prio: PrioMonitor,
		Hook: func(ctx *Ctx) error {
			return &Failure{PC: ctx.PC, Monitor: "test", Kind: "synthetic"}
		}}
	res := run(t, im, Config{Patches: []*Patch{p}})
	if res.Outcome != OutcomeFailure || res.Failure.PC != labels["bad"] {
		t.Fatalf("res = %+v", res)
	}
}

func TestHookPriorityOrdering(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.Sys(isa.SysExit)
	})
	var order []string
	mk := func(name string, prio int) *Patch {
		return &Patch{ID: name, Addr: labels["main"], Prio: prio,
			Hook: func(ctx *Ctx) error { order = append(order, name); return nil }}
	}
	// Applied in reverse priority order; must run in ascending order.
	res := run(t, im, Config{Patches: []*Patch{
		mk("trace", PrioTrace), mk("monitor", PrioMonitor),
		mk("check", PrioCheck), mk("repair", PrioRepair),
	}})
	if res.Outcome != OutcomeExit {
		t.Fatal(res.Outcome)
	}
	want := []string{"repair", "check", "monitor", "trace"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
}

func TestEvalAndSetSlot(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 16)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EBX, isa.EAX)
		a.MovRI(isa.ECX, 500)
		a.Store(asm.M(isa.EBX, 0), isa.ECX)
		a.Label("loadsite")
		a.Load(isa.EAX, asm.M(isa.EBX, 0))
		a.Sys(isa.SysExit)
	})
	var observed uint32
	check := &Patch{ID: "c", Addr: labels["loadsite"], Prio: PrioCheck,
		Hook: func(ctx *Ctx) error {
			// LOAD slots: regB(base), addr, memval.
			v, err := ctx.EvalSlot(2)
			if err != nil {
				return err
			}
			observed = v
			// Enforce a different value through the memory slot.
			return ctx.SetSlot(2, 999)
		}}
	res := run(t, im, Config{Patches: []*Patch{check}})
	if observed != 500 {
		t.Errorf("observed = %d, want 500", observed)
	}
	if res.ExitCode != 999 {
		t.Errorf("exit = %d, want enforced 999", res.ExitCode)
	}
}

func TestShadowStackProviderAttachedToFailure(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.Label("bad")
		a.Sys(isa.SysExit)
	})
	v, _ := New(Config{Image: im})
	v.SetStackProvider(stubStack{0xAAAA, 0xBBBB})
	_ = v.ApplyPatch(&Patch{ID: "f", Addr: labels["bad"], Prio: PrioMonitor,
		Hook: func(ctx *Ctx) error { return &Failure{PC: ctx.PC, Monitor: "m", Kind: "k"} }})
	res := v.Run()
	if res.Failure == nil || len(res.Failure.Stack) != 2 || res.Failure.Stack[0] != 0xAAAA {
		t.Fatalf("failure stack = %+v", res.Failure)
	}
}

type stubStack []uint32

func (s stubStack) StackSnapshot() []uint32 { return append([]uint32(nil), s...) }

func TestHeapGuardStyleCanaryVisible(t *testing.T) {
	// An out-of-bounds store one word past a block lands exactly on the
	// rear canary; the VM itself does not fault (mapped arena), mirroring
	// real heap corruption.
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.MovRI(isa.EAX, 8)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EBX, isa.EAX)
		a.MovRI(isa.ECX, 0x31337)
		a.Store(asm.M(isa.EBX, 8), isa.ECX) // one past the end
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	if res := run(t, im, Config{}); res.Outcome != OutcomeExit {
		t.Fatalf("oob heap store should not fault without Heap Guard: %+v", res)
	}
}
