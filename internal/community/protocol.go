// Package community implements the application community of §3: a group of
// machines running the same application that cooperate to detect failures,
// learn invariants, and distribute patches. A central Manager (the
// Determina Management Console analog) talks to per-machine NodeManagers
// over a transport — an in-process pipe for tests and a real TCP transport
// (the production analog of the console's secure channel).
//
// Patches cross the wire as declarative PatchSpecs (the analog of the
// paper's generated-and-compiled C snippets): nodes compile the specs into
// execution-environment patches locally, apply them to running and newly
// launched instances, and stream invariant-check observations back.
package community

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/correlate"
	"repro/internal/daikon"
	"repro/internal/repair"
)

// MsgKind discriminates protocol messages.
type MsgKind uint8

const (
	// MsgHello introduces a node to the manager.
	MsgHello MsgKind = iota
	// MsgLearnUpload carries a node's locally inferred invariant DB
	// (§3.1: only invariants travel, never raw trace data).
	MsgLearnUpload
	// MsgRunReport carries one execution's outcome, failure information,
	// and invariant-check observations.
	MsgRunReport
	// MsgDirectives carries the manager's current patch set and learning
	// assignment for a node.
	MsgDirectives
	// MsgAck acknowledges a message with no payload.
	MsgAck
	// MsgRecording carries a node's deterministic recording of a failing
	// execution (replay.Recording wire form). The manager replays it to
	// fast-path invariant checking and to judge candidate repairs on its
	// replay farm instead of waiting for live recurrences at the nodes.
	MsgRecording
	// MsgBatch carries many run reports, recordings, and learning uploads
	// in one envelope. Large communities batch so manager work is
	// O(batches), not O(messages): one envelope, one directive snapshot,
	// and at most one replay-farm pass per failure location per batch —
	// however many runs the batch describes.
	MsgBatch
)

func (k MsgKind) String() string {
	switch k {
	case MsgHello:
		return "hello"
	case MsgLearnUpload:
		return "learn-upload"
	case MsgRunReport:
		return "run-report"
	case MsgDirectives:
		return "directives"
	case MsgAck:
		return "ack"
	case MsgRecording:
		return "recording"
	case MsgBatch:
		return "batch"
	}
	return fmt.Sprintf("msg%d", uint8(k))
}

// Hello is a node's registration.
type Hello struct {
	NodeID string
}

// LearnUpload is a serialized local invariant database.
type LearnUpload struct {
	NodeID string
	DB     []byte // daikon.DB.Marshal output
}

// FailureInfo mirrors vm.Failure across the wire.
type FailureInfo struct {
	PC      uint32
	Monitor string
	Kind    string
	Target  uint32
	Stack   []uint32
}

// RunReport is one execution's result. Seq echoes the directive sequence
// the node ran under, so the manager can discard reports from instances
// that had not yet applied the current phase's patches.
type RunReport struct {
	NodeID       string
	Seq          uint64
	Outcome      uint8 // vm.Outcome
	ExitCode     uint32
	Failure      *FailureInfo
	Observations []correlate.Observation
}

// RecordingUpload ships one failing execution's recording to the manager.
// The payload is the replay.Recording wire form (rec.Marshal), kept opaque
// here so the protocol layer does not depend on the replay machinery.
type RecordingUpload struct {
	NodeID    string
	Recording []byte
}

// Batch aggregates one node's activity since its last contact: the run
// reports in execution order, the recordings of any failing runs (each a
// replay.Recording wire form), and any learning-database uploads. The
// manager applies the whole batch under one lock and replies with one
// Directives snapshot.
type Batch struct {
	NodeID     string
	Reports    []RunReport
	Recordings [][]byte
	LearnDBs   [][]byte
}

// CheckSpec asks a node to install checking patches for one invariant.
type CheckSpec struct {
	FailureID string
	Invariant daikon.Invariant
}

// RepairSpec asks a node to install one repair patch. It carries exactly
// the fields a node needs to compile the enforcement locally.
type RepairSpec struct {
	FailureID string
	Invariant daikon.Invariant
	Strategy  repair.Strategy
	Value     uint32
	SPDelta   uint32
	PC        uint32
	Depth     int
}

// Directives is the manager's current instruction set for a node. It is
// idempotent: nodes reconcile their installed patches to match.
type Directives struct {
	Seq     uint64
	Checks  []CheckSpec
	Repairs []RepairSpec
	// LearnLo/LearnHi restrict the node's tracing to instruction
	// addresses in [LearnLo, LearnHi) (0,0 = no learning assignment) —
	// the amortized distributed learning of §3.1.
	LearnLo uint32
	LearnHi uint32
}

// Envelope frames one message on the wire.
type Envelope struct {
	Kind    MsgKind
	Payload []byte
}

func encodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodePayload(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// NewEnvelope builds an envelope for a payload value.
func NewEnvelope(kind MsgKind, v any) (Envelope, error) {
	p, err := encodePayload(v)
	if err != nil {
		return Envelope{}, fmt.Errorf("community: encode %v: %w", kind, err)
	}
	return Envelope{Kind: kind, Payload: p}, nil
}
