package repro_test

import (
	"repro/internal/community"
	"repro/internal/redteam"
)

// benchManager bundles a community manager with a node factory over the
// in-process transport for BenchmarkCommunityProtection.
type benchManager struct {
	m   *community.Manager
	app *redteam.Setup
}

func newBenchManager(setup *redteam.Setup) (*benchManager, error) {
	m, err := community.NewManager(community.ManagerConfig{
		Image:           setup.App.Image,
		Seed:            setup.DB,
		BootstrapInputs: [][]byte{redteam.LearningCorpus()},
	})
	if err != nil {
		return nil, err
	}
	return &benchManager{m: m, app: setup}, nil
}

func (bm *benchManager) node(id string) *community.Node {
	nodeSide, mgrSide := community.Pipe()
	go func() { _ = bm.m.Serve(mgrSide) }()
	n := community.NewNode(id, bm.app.App.Image, nodeSide)
	if err := n.Connect(); err != nil {
		panic(err)
	}
	return n
}
