package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestLabelsAndBranches(t *testing.T) {
	a := New(0x1000)
	a.Label("start")
	a.MovRI(isa.EAX, 3) // 0x1000
	a.Label("loop")
	a.SubRI(isa.EAX, 1) // 0x1008
	a.CmpRI(isa.EAX, 0) // 0x1010
	a.Jne("loop")       // 0x1018
	a.Jmp("done")       // 0x1020
	a.Nop()             // 0x1028
	a.Label("done")
	a.Halt() // 0x1030

	code, labels, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if labels["loop"] != 0x1008 || labels["done"] != 0x1030 {
		t.Fatalf("labels = %#v", labels)
	}
	// Jne at 0x1018: imm = 0x1008 - 0x1020 = -0x18.
	in, err := isa.Decode(code[0x18:])
	if err != nil {
		t.Fatal(err)
	}
	if in.Op != isa.JNE || in.Imm != -0x18 {
		t.Errorf("jne = %+v", in)
	}
	// Jmp at 0x1020: imm = 0x1030 - 0x1028 = 8.
	in, _ = isa.Decode(code[0x20:])
	if in.Op != isa.JMP || in.Imm != 8 {
		t.Errorf("jmp = %+v", in)
	}
}

func TestCallFixup(t *testing.T) {
	a := New(0)
	a.Call("f") // at 0, imm = f - 8
	a.Halt()
	a.Label("f")
	a.Ret()
	code, labels, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	in, _ := isa.Decode(code)
	if in.Op != isa.CALL || uint32(8+in.Imm) != labels["f"] {
		t.Errorf("call = %+v, f at %#x", in, labels["f"])
	}
}

func TestAbsoluteFixups(t *testing.T) {
	a := New(0x2000)
	a.MovLabel(isa.EAX, "table")
	a.Halt()
	a.Label("table")
	a.WordLabel("fn")
	a.Label("fn")
	a.Ret()
	code, labels, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	in, _ := isa.Decode(code)
	if uint32(in.Imm) != labels["table"] {
		t.Errorf("movlabel imm = %#x, want %#x", in.Imm, labels["table"])
	}
	word := uint32(code[0x10]) | uint32(code[0x11])<<8 | uint32(code[0x12])<<16 | uint32(code[0x13])<<24
	if word != labels["fn"] {
		t.Errorf("wordlabel = %#x, want %#x", word, labels["fn"])
	}
}

func TestUndefinedLabel(t *testing.T) {
	a := New(0)
	a.Jmp("nowhere")
	if _, _, err := a.Assemble(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("err = %v", err)
	}
}

func TestDuplicateLabel(t *testing.T) {
	a := New(0)
	a.Label("x")
	a.Nop()
	a.Label("x")
	if _, _, err := a.Assemble(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Errorf("err = %v", err)
	}
}

func TestDataDirectives(t *testing.T) {
	a := New(0)
	a.Word(0xAABBCCDD)
	a.Bytes([]byte{1, 2, 3})
	a.Space(5)
	code, _, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if len(code) != 12 {
		t.Fatalf("len = %d, want 12", len(code))
	}
	if code[0] != 0xDD || code[3] != 0xAA || code[4] != 1 || code[7] != 0 {
		t.Errorf("data bytes = %v", code)
	}
}

func TestMemOperandEmitters(t *testing.T) {
	a := New(0)
	a.Load(isa.EAX, MX(isa.EBX, isa.ECX, 2, 12))
	a.Store(M(isa.EBP, -4), isa.EDX)
	code, _, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	ld, _ := isa.Decode(code)
	if ld.Op != isa.LOAD || ld.B != isa.EBX || ld.X != isa.ECX || ld.Scale != 2 || ld.Imm != 12 {
		t.Errorf("load = %+v", ld)
	}
	st, _ := isa.Decode(code[8:])
	if st.Op != isa.STORE || st.A != isa.EDX || st.B != isa.EBP || st.X != isa.NoReg || st.Imm != -4 {
		t.Errorf("store = %+v", st)
	}
}

func TestPCTracksEmission(t *testing.T) {
	a := New(0x400)
	if a.PC() != 0x400 {
		t.Fatal("initial PC")
	}
	a.Nop()
	a.Word(7)
	if a.PC() != 0x400+8+4 {
		t.Errorf("PC = %#x", a.PC())
	}
}

func TestDisassemble(t *testing.T) {
	a := New(0x100)
	a.MovRI(isa.EAX, 7)
	a.Ret()
	code, _, _ := a.Assemble()
	lines := Disassemble(code, 0x100)
	if len(lines) != 2 || !strings.Contains(lines[0], "movri eax, 7") || !strings.Contains(lines[1], "ret") {
		t.Errorf("disassembly = %v", lines)
	}
}

func TestSortedLabels(t *testing.T) {
	got := SortedLabels(map[string]uint32{"b": 16, "a": 8, "c": 8})
	if len(got) != 3 || got[0] != "a" || got[1] != "c" || got[2] != "b" {
		t.Errorf("sorted = %v", got)
	}
}

func TestSextBAndCopyBEmitters(t *testing.T) {
	a := New(0)
	a.SextB(isa.EDX)
	a.CopyB()
	code, _, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	sx, err := isa.Decode(code)
	if err != nil || sx.Op != isa.SEXTB || sx.A != isa.EDX {
		t.Errorf("sextb = %+v, %v", sx, err)
	}
	cb, err := isa.Decode(code[8:])
	if err != nil || cb.Op != isa.COPYB {
		t.Errorf("copyb = %+v, %v", cb, err)
	}
	if got := cb.String(); got != "copyb [edi], [esi], ecx" {
		t.Errorf("copyb String() = %q", got)
	}
	if got := sx.String(); got != "sextb edx" {
		t.Errorf("sextb String() = %q", got)
	}
}
