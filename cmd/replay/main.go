// Command replay demonstrates the record/replay patch-evaluation farm:
// it records a Red Team exploit failing against the protected webapp,
// replays the recording under the checking patches to classify correlated
// invariants, judges every candidate repair against the recording in
// parallel, and prints the ranked-patch table — all from one failing
// execution, before any repair is deployed live.
//
//	replay -exploit 290162                 record, farm-evaluate, rank
//	replay -exploit 311710 -workers 4      bound the farm's parallelism
//	replay -exploit 290162 -confirm        also run the live confirmation
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/evaluate"
	"repro/internal/obs"
	"repro/internal/redteam"
	"repro/internal/replay"
	"repro/internal/vm"
)

func main() {
	exploitID := flag.String("exploit", "290162", "Bugzilla id of the exploit to record")
	workers := flag.Int("workers", 0, "farm workers (0 = all CPUs)")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline per candidate replay (0 = unbounded)")
	confirm := flag.Bool("confirm", false, "deploy the winning repair and confirm it survives a live presentation")
	profile := flag.Bool("profile", false, "trace pipeline stages and print the per-stage wall/on-CPU/blocked table")
	flag.Parse()

	if err := run(*exploitID, *workers, *deadline, *confirm, *profile); err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

func run(exploitID string, workers int, deadline time.Duration, confirm, profile bool) error {
	var ex redteam.Exploit
	found := false
	for _, e := range redteam.AllExploits() {
		if e.Bugzilla == exploitID {
			ex, found = e, true
		}
	}
	if !found {
		return fmt.Errorf("unknown exploit %q", exploitID)
	}
	if !ex.Repairable {
		return fmt.Errorf("exploit %s is not repairable (it has no recording-farm story to tell)", ex.Bugzilla)
	}

	fmt.Printf("building webapp and learning invariants (expanded corpus: %v)...\n", ex.NeedsExpandedCorpus)
	setup, err := redteam.NewSetup(ex.NeedsExpandedCorpus)
	if err != nil {
		return err
	}

	// Record the failing presentation.
	recStart := time.Now()
	rec, res, err := redteam.RecordAttack(setup, ex, 0)
	if err != nil {
		return err
	}
	if res.Failure == nil {
		return fmt.Errorf("attack did not fail under the monitors: %+v", res)
	}
	raw, err := rec.Marshal()
	if err != nil {
		return err
	}
	fmt.Printf("\nrecorded failing run in %v:\n", time.Since(recStart).Round(time.Microsecond))
	fmt.Printf("  failure    %s at %#x (%s)\n", rec.Failure.Monitor, rec.Failure.PC, rec.Failure.Kind)
	fmt.Printf("  steps      %d\n", rec.Steps)
	fmt.Printf("  snapshots  %d (every %d steps)\n", len(rec.Snapshots), replay.DefaultSnapshotInterval)
	fmt.Printf("  wire size  %d bytes (gob)\n", len(raw))

	// Let the pipeline fast-path the whole case off this one presentation.
	var reg *obs.Registry
	var tr *obs.Tracer
	if profile {
		reg = obs.New()
		tr = obs.NewTracer(reg).WithPprofLabels()
	}
	cv, err := core.New(core.Config{
		Image:          setup.App.Image,
		Invariants:     setup.DB,
		StackScope:     ex.NeedsStackScope,
		MemoryFirewall: true,
		HeapGuard:      true,
		ShadowStack:    true,
		FaultGuard:     true,
		HangGuard:      true,
		Obs:            tr,
		Replay:         &core.ReplayConfig{Workers: workers, Deadline: deadline},
	})
	if err != nil {
		return err
	}
	attack := redteam.AttackInput(setup.App, ex, 0)
	farmStart := time.Now()
	first := cv.Execute(attack)
	if first.Outcome != vm.OutcomeFailure {
		return fmt.Errorf("presentation 1 was not monitor-detected: %+v", first)
	}
	fc := cv.Cases()[0]
	fmt.Printf("\npipeline fast path (%v wall clock):\n", time.Since(farmStart).Round(time.Microsecond))
	fmt.Printf("  candidate invariants  %d\n", fc.Metrics.CandidateCount)
	fmt.Printf("  candidate repairs     %d\n", fc.Metrics.RepairCount)
	fmt.Printf("  offline replays       %d (%d discarded candidates)\n",
		fc.Metrics.ReplayRuns, fc.Metrics.ReplayDiscards)
	fmt.Printf("  case state            %s\n", fc.State)

	if fc.Evaluator == nil {
		return fmt.Errorf("no evaluator: case ended %v", fc.State)
	}

	// The ranked-patch table, exactly as the evaluator would deploy them.
	fmt.Printf("\nranked candidate repairs for %s:\n", fc.ID)
	writeRankedTable(os.Stdout, fc.Evaluator, fc.Current)

	if confirm {
		second := cv.Execute(attack)
		if second.Outcome != vm.OutcomeExit || second.ExitCode != 0 {
			return fmt.Errorf("live confirmation failed: %+v", second)
		}
		fmt.Printf("\nlive confirmation: attack survived under %s after 2 presentations (state %s)\n",
			fc.CurrentRepairID(), fc.State)
	}

	if reg != nil {
		snap := reg.Snapshot()
		fmt.Printf("\n%s", obs.FormatStageTable(&snap))
	}
	return nil
}

// writeRankedTable renders the ranked-candidate table: one row per
// repair in deployment order, the deployed candidate starred. The
// rendering is timing-free so it is byte-stable for a given evaluator
// state (see the golden test).
func writeRankedTable(w io.Writer, ev *evaluate.Evaluator, current *evaluate.Entry) {
	fmt.Fprintf(w, "  %-4s %-52s %8s %5s %5s\n", "rank", "repair", "score", "s", "f")
	for i, e := range ev.Ranked() {
		marker := " "
		if current != nil && e == current {
			marker = "*"
		}
		fmt.Fprintf(w, "  %s%-3d %-52s %8d %5d %5d\n",
			marker, i+1, e.Repair.ID(), e.Score(ev.Bonus), e.Successes, e.Failures)
	}
	fmt.Fprintln(w, "  (* = deployed for the next live execution)")
}
