package daikon

import (
	"math/rand"
	"testing"
)

// randomDB builds an engine fed with random observations over a small
// variable universe and finalizes it.
func randomDB(rng *rand.Rand) *DB {
	e := NewEngine()
	nvars := 2 + rng.Intn(4)
	passes := 1 + rng.Intn(6)
	for p := 0; p < passes; p++ {
		var obs []Obs
		for i := 0; i < nvars; i++ {
			obs = append(obs, Obs{
				Var: VarID{PC: uint32(0x100 + 8*i), Slot: 0},
				Val: uint32(rng.Intn(50)),
			})
		}
		e.ObserveBlockPass(obs)
	}
	return e.Finalize(Options{})
}

// mergeAll folds dbs into a fresh DB in the given order.
func mergeAll(dbs []*DB) *DB {
	out := NewDB()
	for i, db := range dbs {
		cp, _ := UnmarshalDB(mustMarshal(db))
		if i == 0 {
			out = cp
			continue
		}
		out.Merge(cp, DefaultMaxOneOf)
	}
	return out
}

func mustMarshal(db *DB) []byte {
	b, err := db.Marshal()
	if err != nil {
		panic(err)
	}
	return b
}

// TestMergeOrderIndependent: merging member databases in any order yields
// the same community database (the distributed-learning soundness the
// manager depends on — uploads arrive in arbitrary order).
func TestMergeOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		dbs := []*DB{randomDB(rng), randomDB(rng), randomDB(rng)}
		ab := mergeAll([]*DB{dbs[0], dbs[1], dbs[2]})
		ba := mergeAll([]*DB{dbs[2], dbs[0], dbs[1]})
		if ab.Len() != ba.Len() {
			t.Fatalf("trial %d: order-dependent merge: %d vs %d invariants",
				trial, ab.Len(), ba.Len())
		}
		for id, inv := range ab.ByID {
			o, ok := ba.ByID[id]
			if !ok {
				t.Fatalf("trial %d: invariant %s only in one order", trial, id)
			}
			if inv.Kind == KindLowerBound && inv.Bound != o.Bound {
				t.Fatalf("trial %d: %s bound %d vs %d", trial, id, inv.Bound, o.Bound)
			}
			if inv.Kind == KindOneOf && len(inv.Values) != len(o.Values) {
				t.Fatalf("trial %d: %s value sets differ", trial, id)
			}
		}
	}
}

// TestMergeSound: every invariant surviving a merge holds for every sample
// either member observed of its variables. (The community DB never claims
// something a member's data contradicts.)
func TestMergeSound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		// Build two members over the same variables with recorded samples.
		samples := map[VarID][]uint32{}
		build := func() *DB {
			e := NewEngine()
			for p := 0; p < 3; p++ {
				var obs []Obs
				for i := 0; i < 3; i++ {
					v := VarID{PC: uint32(0x100 + 8*i), Slot: 0}
					val := uint32(rng.Intn(40))
					samples[v] = append(samples[v], val)
					obs = append(obs, Obs{Var: v, Val: val})
				}
				e.ObserveBlockPass(obs)
			}
			return e.Finalize(Options{})
		}
		a, b := build(), build()
		a.Merge(b, DefaultMaxOneOf)
		for _, inv := range a.All() {
			switch inv.Kind {
			case KindOneOf, KindLowerBound:
				for _, val := range samples[inv.Var] {
					if !inv.Holds(val, 0) {
						t.Fatalf("trial %d: merged %s contradicted by sample %d",
							trial, inv.ID(), val)
					}
				}
			}
		}
	}
}

// TestMergeSelfIsIdempotentForBounds: merging a database with a copy of
// itself changes no lower bounds and no one-of sets.
func TestMergeSelfIsIdempotentForBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		db := randomDB(rng)
		before := map[string]int32{}
		for id, inv := range db.ByID {
			before[id] = inv.Bound
		}
		cp, _ := UnmarshalDB(mustMarshal(db))
		db.Merge(cp, DefaultMaxOneOf)
		if len(db.ByID) != len(before) {
			t.Fatalf("trial %d: self-merge changed invariant count", trial)
		}
		for id, b := range before {
			if db.ByID[id].Bound != b {
				t.Fatalf("trial %d: self-merge changed bound of %s", trial, id)
			}
		}
	}
}
