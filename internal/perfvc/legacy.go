package perfvc

import (
	"encoding/json"
	"fmt"
	"sort"
)

// legacyMetricNames maps the hand-written BENCH_pr3.json metric keys to
// the unit strings `go test -bench` actually prints (the keys perfvc
// profiles use). Keys not listed pass through unchanged — custom count
// metrics like "presentations" and "msgs" already match their units.
var legacyMetricNames = map[string]string{
	"ns_op":     "ns/op",
	"allocs_op": "allocs/op",
	"b_op":      "B/op",
	"mb_s":      "MB/s",
	"mips":      "MIPS",
}

// legacyProfile is the hand-written BENCH_pr3.json shape: a meta block
// plus flat name → {metric: value} maps for the before/after trees.
type legacyProfile struct {
	Meta   Meta                          `json:"meta"`
	Before map[string]map[string]float64 `json:"before"`
	After  map[string]map[string]float64 `json:"after"`
}

// ConvertLegacy backfills a hand-written BENCH file (the PR 3 shape:
// meta + before/after single-shot values) into a comparable Profile,
// taking the named section ("after" or "before"). Every value becomes a
// single-sample Stat (median = min = max, samples = 1), so the
// comparator's spread term is zero and only the class tolerance applies
// — honest about the fact that the legacy numbers carry no error bars.
// Files whose shape does not fit (BENCH_pr6.json's stage-telemetry
// tables have no per-benchmark go-test metrics) return an error.
func ConvertLegacy(data []byte, section string) (*Profile, error) {
	var legacy legacyProfile
	if err := json.Unmarshal(data, &legacy); err != nil {
		return nil, err
	}
	var tree map[string]map[string]float64
	switch section {
	case "after":
		tree = legacy.After
	case "before":
		tree = legacy.Before
	default:
		return nil, fmt.Errorf("unknown legacy section %q (want before/after)", section)
	}
	if len(tree) == 0 {
		return nil, fmt.Errorf("no %q section — not the PR 3 legacy shape", section)
	}
	suite := Registry()
	p := &Profile{Meta: legacy.Meta, Benchmarks: map[string]Bench{}}
	var names []string
	for name := range tree {
		names = append(names, name)
	}
	sort.Strings(names)
	converted := 0
	for _, name := range names {
		metrics := tree[name]
		// Only benchmark-shaped entries convert: a name must look like a
		// go benchmark and carry at least one numeric metric.
		if len(metrics) == 0 || len(name) < len("Benchmark") || name[:len("Benchmark")] != "Benchmark" {
			continue
		}
		b := Bench{Entry: name, Metrics: map[string]Stat{}}
		if e := suite.EntryFor(name); e != nil {
			b.Entry, b.Package = e.Name, e.Package
		}
		for key, v := range metrics {
			unit := key
			if mapped, ok := legacyMetricNames[key]; ok {
				unit = mapped
			}
			b.Metrics[unit] = Stat{Median: v, Min: v, Max: v, Samples: 1}
		}
		p.Benchmarks[name] = b
		converted++
	}
	if converted == 0 {
		return nil, fmt.Errorf("%q section holds no benchmark-shaped entries", section)
	}
	return p, nil
}
