package redteam

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/daikon"
	"repro/internal/monitor"
	"repro/internal/repair"
	"repro/internal/replay"
	"repro/internal/vm"
)

// newClassExpectations pins the full pipeline story for each extended
// failure class: which detector fires, what kind of failure it reports,
// which invariant family corrects it, and which repair strategy the
// evaluator adopts.
var newClassExpectations = map[string]struct {
	monitor  string
	kind     string
	site     string // webapp label of the failure location
	invKind  daikon.Kind
	strategy repair.Strategy
}{
	"div-zero": {
		monitor: "FaultGuard", kind: "divide by zero", site: "site_divzero_div",
		invKind: daikon.KindNonzero, strategy: repair.StratNonzeroClamp,
	},
	"unaligned": {
		monitor: "FaultGuard", kind: "unaligned access", site: "site_unaligned_load",
		invKind: daikon.KindModulus, strategy: repair.StratClampMod,
	},
	"hang-loop": {
		monitor: "HangGuard", kind: "runaway loop", site: "site_hang_loop",
		invKind: daikon.KindNonzero, strategy: repair.StratNonzeroClamp,
	},
}

// TestNewClassEndToEnd drives each extended failure class through the
// whole live pipeline: the attack is detected by its new monitor at the
// seeded site, the correlated invariant comes from the new family, a
// repair of the new strategy is generated and adopted, and the patched
// application survives re-attacks while rendering subsequent legitimate
// pages bit-identically to the bare application.
func TestNewClassEndToEnd(t *testing.T) {
	setup := getSetup(t, false)
	for _, ex := range NewClassExploits() {
		ex := ex
		t.Run(ex.Bugzilla, func(t *testing.T) {
			want := newClassExpectations[ex.Bugzilla]
			cv, err := setup.ClearView(1)
			if err != nil {
				t.Fatal(err)
			}

			// Presentation 1: detection with full provenance.
			out := cv.Execute(AttackInput(setup.App, ex, 0))
			if out.Outcome != vm.OutcomeFailure || out.Failure == nil {
				t.Fatalf("first presentation not monitor-detected: %+v", out)
			}
			f := out.Failure
			if f.Monitor != want.monitor || f.Kind != want.kind {
				t.Fatalf("detected by %s (%s), want %s (%s)", f.Monitor, f.Kind, want.monitor, want.kind)
			}
			if site := setup.App.Labels[want.site]; f.PC != site {
				t.Fatalf("failure at %#x, want %s (%#x)", f.PC, want.site, site)
			}
			if len(f.Stack) == 0 {
				t.Fatal("failure carries no shadow-stack provenance")
			}

			// Presentations 2..4: checking, correlation, repair, adoption.
			res := RunSingleVariant(cv, setup.App, ex, 20)
			if !res.Patched || res.Presentations+1 != expectedPresentations[ex.Bugzilla] {
				t.Fatalf("campaign after detection: %+v, want patched at %d total presentations",
					res, expectedPresentations[ex.Bugzilla])
			}
			fc := cv.Case(f.PC)
			if fc == nil || fc.State != core.StatePatched {
				t.Fatalf("case not patched: %+v", fc)
			}
			adopted := fc.Current.Repair
			if adopted.Inv.Kind != want.invKind {
				t.Errorf("adopted invariant kind %v, want %v", adopted.Inv.Kind, want.invKind)
			}
			if adopted.Strategy != want.strategy {
				t.Errorf("adopted strategy %v, want %v", adopted.Strategy, want.strategy)
			}
			if corr := fc.Correlations[adopted.Inv.ID()]; corr < 2 {
				t.Errorf("adopted invariant only %v correlated", corr)
			}

			// Re-attacks survive, and the legitimate pages that follow the
			// attack render bit-identically to the bare application.
			bare, err := vm.New(vm.Config{Image: setup.App.Image, Input: subsequentPages()})
			if err != nil {
				t.Fatal(err)
			}
			wantTail := bare.Run().Output
			for i := 0; i < 3; i++ {
				out := cv.Execute(AttackInput(setup.App, ex, 0))
				if out.Outcome != vm.OutcomeExit || out.ExitCode != 0 {
					t.Fatalf("re-attack %d not survived: %+v", i, out)
				}
				if !bytes.HasSuffix(out.Output, wantTail) {
					t.Fatalf("re-attack %d corrupted the subsequent pages' rendering", i)
				}
			}
		})
	}
}

// TestNewClassReplayFastPath: with the record/replay fast path on, each
// new failure class converges in two presentations — the first records,
// completes checking against the tape, and farm-ranks the candidates; the
// second survives under the adopted repair.
func TestNewClassReplayFastPath(t *testing.T) {
	setup := getSetup(t, false)
	for _, ex := range NewClassExploits() {
		cv, err := setup.ReplayClearView(1, 0)
		if err != nil {
			t.Fatal(err)
		}
		res := RunSingleVariant(cv, setup.App, ex, 6)
		if !res.Patched || res.Presentations != 2 {
			t.Errorf("%s via replay: %+v, want patched in 2", ex.Bugzilla, res)
		}
	}
}

// TestNewClassMultiVariant mirrors §4.3.4 for the extended classes:
// interleaving byte-distinct exploit variants yields the same patch after
// the same number of presentations as the single-variant attack.
func TestNewClassMultiVariant(t *testing.T) {
	setup := getSetup(t, false)
	for _, ex := range NewClassExploits() {
		if ex.Variants < 2 {
			t.Fatalf("%s has no variants", ex.Bugzilla)
		}
		cv, err := setup.ClearView(1)
		if err != nil {
			t.Fatal(err)
		}
		res := RunMultiVariant(cv, setup.App, ex, 20)
		if !res.Patched || res.Presentations != expectedPresentations[ex.Bugzilla] {
			t.Errorf("%s variants: %+v, want %d", ex.Bugzilla, res, expectedPresentations[ex.Bugzilla])
		}
	}
}

// TestNewClassUndetectedWithoutGuards: without FaultGuard/HangGuard the
// extended-class attacks terminate as plain crashes (or spin to the hard
// step limit) — no failure case ever opens, mirroring the Heap Guard
// ablation of §4.4.4 for the new detector families.
func TestNewClassUndetectedWithoutGuards(t *testing.T) {
	setup := getSetup(t, false)
	for _, ex := range NewClassExploits() {
		cv, err := core.New(core.Config{
			Image:      setup.App.Image,
			Invariants: setup.DB,
			StackScope: 1,
			// The paper's three monitors only.
			MemoryFirewall: true, HeapGuard: true, ShadowStack: true,
			// Keep the undetected hang cheap: the hard step limit is the
			// only thing that ends it.
			MaxSteps: 2 * monitor.DefaultHangBudget,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := cv.Execute(AttackInput(setup.App, ex, 0))
		if out.Outcome != vm.OutcomeCrash {
			t.Errorf("%s without guards: outcome %v, want crash", ex.Bugzilla, out.Outcome)
		}
		if len(cv.Cases()) != 0 {
			t.Errorf("%s: case opened without detection", ex.Bugzilla)
		}
	}
}

// TestNewClassRecordingsVet: recordings of the new failure classes pass
// the farm's replay vetting exactly as sealed — the new monitors and the
// hang budget are part of the recorded machine configuration, so the
// replay reproduces the claimed detection bit for bit — while any
// tampering with the claim (monitor, location, step count) is rejected.
// This is the sanity gate a community manager applies before a foreign
// recording may drive a campaign.
func TestNewClassRecordingsVet(t *testing.T) {
	setup := getSetup(t, false)
	farm := &replay.Farm{}
	for _, ex := range NewClassExploits() {
		rec, res, err := RecordAttack(setup, ex, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Failure == nil {
			t.Fatalf("%s: recording captured no failure", ex.Bugzilla)
		}
		if err := farm.Vet(rec); err != nil {
			t.Errorf("%s: honest recording rejected: %v", ex.Bugzilla, err)
		}
		tampered := *rec
		f := *rec.Failure
		f.Monitor = "HeapGuard" // relabel the detector
		tampered.Failure = &f
		if err := farm.Vet(&tampered); err == nil {
			t.Errorf("%s: relabelled-monitor recording passed vetting", ex.Bugzilla)
		}
		tampered = *rec
		f = *rec.Failure
		f.PC += 8 // move the claimed failure location
		tampered.Failure = &f
		if err := farm.Vet(&tampered); err == nil {
			t.Errorf("%s: moved-location recording passed vetting", ex.Bugzilla)
		}
		tampered = *rec
		tampered.Steps++ // inflate the claimed work
		if err := farm.Vet(&tampered); err == nil {
			t.Errorf("%s: inflated-steps recording passed vetting", ex.Bugzilla)
		}
	}
}

// TestHangBudgetClearsLegitimateWorkloads pins HangGuard's conservatism:
// every legitimate workload — the full learning corpora and all 57
// evaluation pages — finishes under the full detector set with at least a
// 10x margin below the hang budget, so the watchdog cannot false-positive
// on honest traffic without an order-of-magnitude workload regression
// failing this test first.
func TestHangBudgetClearsLegitimateWorkloads(t *testing.T) {
	setup := getSetup(t, false)
	inputs := [][]byte{LearningCorpus(), ExpandedCorpus()}
	inputs = append(inputs, EvaluationPages()...)
	cv, err := setup.ClearView(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, input := range inputs {
		out := cv.Execute(input)
		if out.Outcome != vm.OutcomeExit || out.ExitCode != 0 {
			t.Fatalf("legitimate input %d did not exit cleanly: %+v", i, out)
		}
		if out.Steps*10 > monitor.DefaultHangBudget {
			t.Errorf("legitimate input %d used %d steps — under 10x margin of the %d hang budget",
				i, out.Steps, monitor.DefaultHangBudget)
		}
	}
	if len(cv.Cases()) != 0 {
		t.Fatalf("legitimate workloads opened %d failure cases", len(cv.Cases()))
	}
}
