package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestLearnReportGolden pins the learning report for both corpora: run
// counts, trace volume, and the per-family invariant census (including
// the nonzero and modulus families). A corpus or inference change that
// moves any number shows up as a golden diff, not a silent drift.
func TestLearnReportGolden(t *testing.T) {
	for _, tc := range []struct {
		name     string
		expanded bool
	}{
		{name: "default.golden", expanded: false},
		{name: "expanded.golden", expanded: true},
	} {
		var buf bytes.Buffer
		if err := run(&buf, tc.expanded, false, ""); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, tc.name, buf.String())
	}
}

// TestLearnWritesDatabase checks the -o path: the serialized database
// must round-trip through the file.
func TestLearnWritesDatabase(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.gob")
	var buf bytes.Buffer
	if err := run(&buf, false, false, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 {
		t.Fatal("empty database written")
	}
}
