package repro_test

import (
	"os"
	"strings"
	"testing"
)

// TestPackageTourCoversEveryPackage pins the hand-maintained package
// documentation to reality: every package under internal/ must appear in
// README.md's package tour and in doc.go's package list, so the next
// undocumented package fails tier-1 instead of silently drifting.
func TestPackageTourCoversEveryPackage(t *testing.T) {
	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string]string{}
	for _, file := range []string{"README.md", "doc.go"} {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		docs[file] = string(raw)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkg := "internal/" + e.Name()
		for file, content := range docs {
			if !strings.Contains(content, pkg) {
				t.Errorf("%s does not mention %s — update the package tour", file, pkg)
			}
		}
	}
	// And the architecture map, once per stage-owning package (the map is
	// organized by pipeline stage, so it must at least name each package).
	arch, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("ARCHITECTURE.md missing: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() && !strings.Contains(string(arch), "internal/"+e.Name()) {
			t.Errorf("ARCHITECTURE.md does not mention internal/%s", e.Name())
		}
	}
}
