package webapp_test

import (
	"testing"

	"repro/internal/monitor"
	"repro/internal/redteam"
	"repro/internal/vm"
	"repro/internal/webapp"
)

func bareRun(t *testing.T, app *webapp.App, input []byte, plugins ...vm.Plugin) vm.RunResult {
	t.Helper()
	machine, err := vm.New(vm.Config{Image: app.Image, Input: input, Plugins: plugins})
	if err != nil {
		t.Fatal(err)
	}
	return machine.Run()
}

func TestBuild(t *testing.T) {
	app, err := webapp.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Image.Code) < 100*8 {
		t.Errorf("suspiciously small image: %d bytes", len(app.Image.Code))
	}
	for _, label := range []string{
		"main", "render_page", "site_290162", "site_295854", "site_312278",
		"site_269095", "site_320182", "site_296134", "site_325403",
		"site_285595_store", "site_307259_store",
		"site_311710a_call", "site_311710b_call", "site_311710c_call",
	} {
		if _, ok := app.Labels[label]; !ok {
			t.Errorf("missing label %q", label)
		}
	}
}

func TestEmptyInputExitsCleanly(t *testing.T) {
	app := webapp.MustBuild()
	res := bareRun(t, app, nil)
	if res.Outcome != vm.OutcomeExit || res.ExitCode != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestLearningCorpusRenders(t *testing.T) {
	app := webapp.MustBuild()
	res := bareRun(t, app, redteam.LearningCorpus())
	if res.Outcome != vm.OutcomeExit {
		t.Fatalf("learning corpus: %+v", res)
	}
	if len(res.Output) == 0 {
		t.Fatal("no display output")
	}
}

func TestExpandedCorpusRenders(t *testing.T) {
	app := webapp.MustBuild()
	res := bareRun(t, app, redteam.ExpandedCorpus())
	if res.Outcome != vm.OutcomeExit {
		t.Fatalf("expanded corpus: %+v", res)
	}
}

func TestEvaluationPagesRender(t *testing.T) {
	app := webapp.MustBuild()
	for i, page := range redteam.EvaluationPages() {
		res := bareRun(t, app, page)
		if res.Outcome != vm.OutcomeExit {
			t.Fatalf("evaluation page %d: %+v", i, res)
		}
	}
}

func TestCorpusRendersUnderMonitors(t *testing.T) {
	// The monitors must not perturb legitimate executions (no false
	// positives, identical display).
	app := webapp.MustBuild()
	plain := bareRun(t, app, redteam.LearningCorpus())
	ss := monitor.NewShadowStack()
	guarded, err := vm.New(vm.Config{
		Image: app.Image, Input: redteam.LearningCorpus(),
		Plugins: []vm.Plugin{ss, monitor.NewMemoryFirewall(), monitor.NewHeapGuard()},
	})
	if err != nil {
		t.Fatal(err)
	}
	ss.Install(guarded)
	res := guarded.Run()
	if res.Outcome != vm.OutcomeExit {
		t.Fatalf("monitors fired on legitimate input: %+v", res)
	}
	if string(res.Output) != string(plain.Output) {
		t.Error("display differs under monitors")
	}
}

// TestExploitsCompromiseUnprotected verifies each exploit "works" on the
// unprotected application (§4.2: "verified to successfully exploit a
// vulnerability in the unprotected version"). Control-flow exploits divert
// execution into injected data, which the simulation surfaces as an
// abnormal termination. The heap-overflow exploits corrupt memory
// silently — demonstrated by running the same input under Heap Guard
// alone, which observes the out-of-bounds writes.
func TestExploitsCompromiseUnprotected(t *testing.T) {
	app := webapp.MustBuild()
	heapClass := map[string]bool{"285595": true, "307259": true, "325403": true}
	for _, ex := range redteam.Exploits() {
		input := redteam.AttackInput(app, ex, 0)
		if heapClass[ex.Bugzilla] {
			res := bareRun(t, app, input, monitor.NewHeapGuard())
			if res.Outcome != vm.OutcomeFailure {
				t.Errorf("%s: no out-of-bounds writes observed: %+v", ex.Bugzilla, res)
			}
			continue
		}
		res := bareRun(t, app, input)
		if res.Outcome == vm.OutcomeExit {
			t.Errorf("%s: exploit has no effect on the unprotected app", ex.Bugzilla)
		}
	}
}

// TestExploitsBlockedByMonitors verifies the monitors detect every attack
// at the expected failure site ("ClearView detected and blocked all
// attacks" — §4.3).
func TestExploitsBlockedByMonitors(t *testing.T) {
	app := webapp.MustBuild()
	wantSite := map[string]string{
		"269095": "site_269095",
		"285595": "site_285595_store",
		"290162": "site_290162",
		"295854": "site_295854",
		"296134": "site_296134",
		"307259": "site_307259_store",
		"311710": "site_311710a_call",
		"312278": "site_312278",
		"320182": "site_320182",
		"325403": "site_325403",
	}
	wantMonitor := map[string]string{
		"285595": "HeapGuard",
		"307259": "HeapGuard",
		"325403": "HeapGuard",
	}
	for _, ex := range redteam.Exploits() {
		ss := monitor.NewShadowStack()
		machine, err := vm.New(vm.Config{
			Image: app.Image, Input: redteam.AttackInput(app, ex, 0),
			Plugins: []vm.Plugin{ss, monitor.NewMemoryFirewall(), monitor.NewHeapGuard()},
		})
		if err != nil {
			t.Fatal(err)
		}
		ss.Install(machine)
		res := machine.Run()
		if res.Outcome != vm.OutcomeFailure {
			t.Errorf("%s: not blocked: %+v", ex.Bugzilla, res)
			continue
		}
		if site := app.Labels[wantSite[ex.Bugzilla]]; res.Failure.PC != site {
			t.Errorf("%s: failure at %#x, want %s (%#x)",
				ex.Bugzilla, res.Failure.PC, wantSite[ex.Bugzilla], site)
		}
		wantMon := wantMonitor[ex.Bugzilla]
		if wantMon == "" {
			wantMon = "MemoryFirewall"
		}
		if res.Failure.Monitor != wantMon {
			t.Errorf("%s: detected by %s, want %s", ex.Bugzilla, res.Failure.Monitor, wantMon)
		}
		if len(res.Failure.Stack) == 0 {
			t.Errorf("%s: no shadow stack at failure", ex.Bugzilla)
		}
	}
}
