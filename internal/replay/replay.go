// Package replay implements deterministic record/replay of protected
// executions and a parallel patch-evaluation farm built on it.
//
// ClearView's live pipeline (internal/core) judges candidate repair
// patches only on *subsequent* executions, so convergence to a correct
// patch is gated on how often the failure recurs in production: run 1
// detects, runs 2–3 check correlated invariants, runs 4+ try candidate
// repairs one at a time. The simulated machine is fully deterministic —
// same image, same input, same patches ⇒ same execution — which makes a
// recorded failing run a perfect offline test bench. A Recording captures
// everything needed to re-create the run (the image, the input stream, the
// deployed patch set, the monitor configuration) plus periodic
// copy-on-write machine snapshots; a Farm then replays the recording under
// every candidate patch concurrently and feeds the verdicts into
// internal/evaluate, so the checking phase and the repair ranking collapse
// into the first failing wall-clock presentation.
//
// Recordings are gob-serializable: community nodes ship failing runs to
// the manager (see internal/community's MsgRecording), which evaluates
// repairs centrally instead of assigning one candidate per node and
// waiting for live recurrences.
package replay

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/daikon"
	"repro/internal/image"
	"repro/internal/monitor"
	"repro/internal/repair"
	"repro/internal/vm"
)

// DefaultSnapshotInterval is the default step gap between periodic machine
// snapshots while recording. Snapshots are copy-on-write (O(pages dirtied
// since the last one)), so the default errs toward frequent.
const DefaultSnapshotInterval = 100_000

// Monitors selects the failure detectors active during a recorded run and
// its replays. Replays must run under the same monitor configuration as
// the recording for detection parity — including the hang budget, since a
// replayed hang must fire at the same block as the recorded one.
type Monitors struct {
	MemoryFirewall bool // illegal-write detection (§2.3)
	HeapGuard      bool // heap canary checking
	ShadowStack    bool // return-address integrity
	FaultGuard     bool // arithmetic faults (divide by zero, unaligned access)
	HangGuard      bool // runaway-loop step-budget watchdog
	// HangBudget is the HangGuard step budget; 0 selects
	// monitor.DefaultHangBudget when HangGuard is armed.
	HangBudget uint64
}

// AllMonitors is the full detector set: the Red Team configuration
// (§4.2.2) plus the arithmetic-fault and hang detectors, the default
// everywhere.
func AllMonitors() Monitors {
	return Monitors{
		MemoryFirewall: true, HeapGuard: true, ShadowStack: true,
		FaultGuard: true, HangGuard: true,
	}
}

// Plugins materializes the selected detectors as machine plugins; the
// second and third results need machine-level installation after vm.New
// (ShadowStack.Install, HangGuard.Install) and are nil when unselected.
// Every machine builder that runs under a Monitors value — recording,
// replay, fuzzing, community nodes — assembles its detector stack here so
// the configuration can never drift between the recorder and the replayer.
func (m Monitors) Plugins() ([]vm.Plugin, *monitor.ShadowStack, *monitor.HangGuard) {
	var plugins []vm.Plugin
	var shadow *monitor.ShadowStack
	var hang *monitor.HangGuard
	if m.ShadowStack {
		shadow = monitor.NewShadowStack()
		plugins = append(plugins, shadow)
	}
	if m.MemoryFirewall {
		plugins = append(plugins, monitor.NewMemoryFirewall())
	}
	if m.HeapGuard {
		plugins = append(plugins, monitor.NewHeapGuard())
	}
	if m.FaultGuard {
		plugins = append(plugins, monitor.NewFaultGuard())
	}
	if m.HangGuard {
		hang = &monitor.HangGuard{Budget: m.HangBudget}
		plugins = append(plugins, hang)
	}
	return plugins, shadow, hang
}

// PatchSpec is the declarative form of one deployed repair — the same
// shape the community protocol ships (a recording must be self-contained:
// the failing run may have executed under adopted patches for other
// failure locations, and a faithful replay needs them in place).
type PatchSpec struct {
	FailureID string           // the failure case the repair targets
	Invariant daikon.Invariant // the invariant the repair enforces
	Strategy  repair.Strategy  // enforcement strategy (§2.5)
	Value     uint32           // strategy operand (e.g. the set-value constant)
	SPDelta   uint32           // stack-pointer restore for return-from-procedure
	PC        uint32           // enforcement site
	Depth     int              // call-stack depth of the enforcement site
}

// Spec captures a deployed repair as a self-contained PatchSpec.
func Spec(failureID string, r *repair.Repair) PatchSpec {
	return PatchSpec{
		FailureID: failureID,
		Invariant: *r.Inv,
		Strategy:  r.Strategy,
		Value:     r.Value,
		SPDelta:   r.SPDelta,
		PC:        r.PC,
		Depth:     r.Depth,
	}
}

// Repair reconstructs the repair object a spec describes.
func (s *PatchSpec) Repair() *repair.Repair {
	inv := s.Invariant
	return &repair.Repair{
		Inv:      &inv,
		Strategy: s.Strategy,
		Value:    s.Value,
		SPDelta:  s.SPDelta,
		PC:       s.PC,
		Depth:    s.Depth,
	}
}

// Recording is one captured execution, self-contained and serializable:
// everything needed to re-create the run bit-identically on another
// machine, plus periodic snapshots for fast-forwarding.
type Recording struct {
	ID       string      // human-readable label ("node/seqN")
	Image    []byte      // image.Marshal form
	Input    []byte      // the exact input stream the run consumed
	Deployed []PatchSpec // repairs in place during the recorded run
	Monitors Monitors    // monitor configuration of the recorded machine
	MaxSteps uint64      // step budget of the recorded machine

	Snapshots []*vm.Snapshot // ascending by Steps; [0] is the step-0 state

	// How the recorded run ended.
	Outcome  vm.Outcome
	ExitCode uint32      // see Outcome
	Failure  *vm.Failure // see Outcome
	Steps    uint64      // see Outcome
}

// FailurePC returns the recorded failure location, if the run failed.
func (r *Recording) FailurePC() (uint32, bool) {
	if r.Failure == nil {
		return 0, false
	}
	return r.Failure.PC, true
}

// Marshal serializes the recording (gob).
func (r *Recording) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		return nil, fmt.Errorf("replay: encode recording: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal deserializes a recording.
func Unmarshal(b []byte) (*Recording, error) {
	var r Recording
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r); err != nil {
		return nil, fmt.Errorf("replay: decode recording: %w", err)
	}
	return &r, nil
}

// Tape collects snapshots during a run and seals them into a Recording.
// Wire a tape into the machine that should be recorded:
//
//	tape := replay.NewTape(0)
//	cfg.SnapshotInterval, cfg.SnapshotSink = tape.Interval(), tape.Sink
//
// and call Seal with the run's result afterwards. internal/core records
// its own machines this way rather than through Record.
type Tape struct {
	interval uint64
	snaps    []*vm.Snapshot
}

// NewTape returns a tape; interval 0 selects DefaultSnapshotInterval.
func NewTape(interval uint64) *Tape {
	if interval == 0 {
		interval = DefaultSnapshotInterval
	}
	return &Tape{interval: interval}
}

// Interval returns the snapshot cadence for vm.Config.SnapshotInterval.
func (t *Tape) Interval() uint64 { return t.interval }

// Sink is the vm.Config.SnapshotSink callback.
func (t *Tape) Sink(s *vm.Snapshot) { t.snaps = append(t.snaps, s) }

// Len returns the number of snapshots captured so far.
func (t *Tape) Len() int { return len(t.snaps) }

// Seal packages the tape and the run's outcome into a Recording. The tape
// is reset for reuse.
func (t *Tape) Seal(id string, img *image.Image, input []byte, deployed []PatchSpec, mons Monitors, maxSteps uint64, res vm.RunResult) *Recording {
	if maxSteps == 0 {
		maxSteps = vm.DefaultMaxSteps
	}
	rec := &Recording{
		ID:        id,
		Image:     img.Marshal(),
		Input:     append([]byte(nil), input...),
		Deployed:  append([]PatchSpec(nil), deployed...),
		Monitors:  mons,
		MaxSteps:  maxSteps,
		Snapshots: t.snaps,
		Outcome:   res.Outcome,
		ExitCode:  res.ExitCode,
		Failure:   res.Failure,
		Steps:     res.Steps,
	}
	t.snaps = nil
	return rec
}

// Options configures Record.
type Options struct {
	// SnapshotInterval is the step gap between periodic snapshots;
	// 0 selects DefaultSnapshotInterval.
	SnapshotInterval uint64
	// Monitors during the run; the zero value means AllMonitors.
	Monitors *Monitors
	// MaxSteps bounds the run; 0 selects vm.DefaultMaxSteps.
	MaxSteps uint64
}

func (o Options) monitors() Monitors {
	if o.Monitors == nil {
		return AllMonitors()
	}
	return *o.Monitors
}

// Record executes input against img under the given deployed patches and
// monitors, capturing periodic snapshots, and returns the sealed recording
// together with the run's result. Recording a run that does not fail is
// legal (the recording documents a healthy baseline); the Farm only
// requires a recorded failure for its Recurred verdicts.
func Record(id string, img *image.Image, input []byte, deployed []PatchSpec, opts Options) (*Recording, vm.RunResult, error) {
	tape := NewTape(opts.SnapshotInterval)
	mons := opts.monitors()
	machine, err := newMachine(img, input, mons, compileSpecs(deployed, ""), opts.MaxSteps, tape)
	if err != nil {
		return nil, vm.RunResult{}, err
	}
	res := machine.Run()
	return tape.Seal(id, img, input, deployed, mons, opts.MaxSteps, res), res, nil
}

// newMachine assembles a machine with the monitor set, patches, and
// optional tape attached.
func newMachine(img *image.Image, input []byte, mons Monitors, patches []*vm.Patch, maxSteps uint64, tape *Tape) (*vm.VM, error) {
	plugins, shadow, hang := mons.Plugins()
	cfg := vm.Config{
		Image:    img,
		Input:    input,
		Plugins:  plugins,
		Patches:  patches,
		MaxSteps: maxSteps,
	}
	if tape != nil {
		cfg.SnapshotInterval = tape.Interval()
		cfg.SnapshotSink = tape.Sink
	}
	machine, err := vm.New(cfg)
	if err != nil {
		return nil, err
	}
	if shadow != nil {
		shadow.Install(machine)
	}
	if hang != nil {
		hang.Install(machine)
	}
	return machine, nil
}

// compileSpecs turns deployed patch specs into machine patches, skipping
// the specs belonging to excludeFailureID (the case whose candidates are
// being evaluated must not also run its previously deployed repair).
func compileSpecs(specs []PatchSpec, excludeFailureID string) []*vm.Patch {
	var out []*vm.Patch
	for i := range specs {
		if excludeFailureID != "" && specs[i].FailureID == excludeFailureID {
			continue
		}
		r := specs[i].Repair()
		out = append(out, r.BuildPatches(specs[i].FailureID)...)
	}
	return out
}

// DecodeImage returns the recording's binary image.
func (r *Recording) DecodeImage() (*image.Image, error) {
	return image.Unmarshal(r.Image)
}

// NewMachine builds a fresh machine configured exactly as the recorded one
// (image, input, monitors, deployed patches, step budget), with extra
// patches layered on top and the patches of excludeFailureID left out.
// Running it replays the recording deterministically — modulo whatever
// behaviour the extra patches change, which is the point.
func (r *Recording) NewMachine(img *image.Image, extra []*vm.Patch, excludeFailureID string) (*vm.VM, error) {
	if img == nil {
		var err error
		img, err = r.DecodeImage()
		if err != nil {
			return nil, err
		}
	}
	patches := compileSpecs(r.Deployed, excludeFailureID)
	patches = append(patches, extra...)
	return newMachine(img, r.Input, r.Monitors, patches, r.MaxSteps, nil)
}

// Replay re-executes the recording from the start under extra patches.
func (r *Recording) Replay(extra []*vm.Patch, excludeFailureID string) (vm.RunResult, error) {
	machine, err := r.NewMachine(nil, extra, excludeFailureID)
	if err != nil {
		return vm.RunResult{}, err
	}
	return machine.Run(), nil
}

// FastForward restores the latest snapshot and runs the tail of the
// recording. Because machine snapshots do not capture plugin state, the
// tail runs under Memory Firewall and Heap Guard only (both are consistent
// at any snapshot point: the firewall is stateless and the guard reads the
// restored allocator); a Shadow Stack cannot be resumed mid-run, so
// failures originally detected by it surface as crashes here. Use it for
// cheap triage — "does the failing tail still misbehave" — not for
// verdicts; the Farm always replays full runs.
func (r *Recording) FastForward() (vm.RunResult, error) {
	img, err := r.DecodeImage()
	if err != nil {
		return vm.RunResult{}, err
	}
	mons := r.Monitors
	mons.ShadowStack = false
	machine, err := newMachine(img, r.Input, mons, compileSpecs(r.Deployed, ""), r.MaxSteps, nil)
	if err != nil {
		return vm.RunResult{}, err
	}
	if len(r.Snapshots) > 0 {
		machine.Restore(r.Snapshots[len(r.Snapshots)-1])
	}
	return machine.Run(), nil
}
