package monitor

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/vm"
)

func buildImage(t *testing.T, build func(a *asm.Assembler)) (*image.Image, map[string]uint32) {
	t.Helper()
	a := asm.New(0x1000)
	build(a)
	code, labels, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := labels["main"]
	if !ok {
		entry = 0x1000
	}
	return &image.Image{Base: 0x1000, Entry: entry, Code: code}, labels
}

func TestFirewallBlocksCallToHeap(t *testing.T) {
	// Classic code injection: a function pointer redirected into heap data.
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 16)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EBX, isa.EAX)
		a.Label("site")
		a.CallR(isa.EBX) // target = heap pointer
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	v, _ := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{NewMemoryFirewall()}})
	res := v.Run()
	if res.Outcome != vm.OutcomeFailure {
		t.Fatalf("outcome = %v, want failure", res.Outcome)
	}
	f := res.Failure
	if f.Monitor != "MemoryFirewall" || f.PC != labels["site"] {
		t.Errorf("failure = %+v", f)
	}
	if f.Target < 0x2000_0000 {
		t.Errorf("target = %#x, want heap address", f.Target)
	}
}

func TestFirewallBlocksCorruptedReturn(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.Call("f")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
		a.Label("f")
		// Smash the return address with a non-code value.
		a.MovRI(isa.ECX, 0x20000000)
		a.Store(asm.M(isa.ESP, 0), isa.ECX)
		a.Label("retsite")
		a.Ret()
	})
	v, _ := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{NewMemoryFirewall()}})
	res := v.Run()
	if res.Outcome != vm.OutcomeFailure || res.Failure.PC != labels["retsite"] {
		t.Fatalf("res = %+v", res)
	}
}

func TestFirewallAllowsLegitimateIndirect(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovLabel(isa.EBX, "f")
		a.CallR(isa.EBX)
		a.Sys(isa.SysExit)
		a.Label("f")
		a.MovRI(isa.EAX, 5)
		a.Ret()
	})
	v, _ := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{NewMemoryFirewall()}})
	res := v.Run()
	if res.Outcome != vm.OutcomeExit || res.ExitCode != 5 {
		t.Fatalf("false positive: %+v", res)
	}
}

// heapOverflowProgram writes one word at offset off into an 8-byte block.
func heapOverflowProgram(t *testing.T, off int32) (*image.Image, map[string]uint32) {
	return buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 8)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EBX, isa.EAX)
		a.MovRI(isa.ECX, 0x11223344)
		a.Label("store")
		a.Store(asm.M(isa.EBX, off), isa.ECX)
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
}

func TestHeapGuardDetectsOverflowPastEnd(t *testing.T) {
	im, labels := heapOverflowProgram(t, 8) // first word past the block
	v, _ := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{NewHeapGuard()}})
	res := v.Run()
	if res.Outcome != vm.OutcomeFailure {
		t.Fatalf("outcome = %v", res.Outcome)
	}
	if res.Failure.Monitor != "HeapGuard" || res.Failure.PC != labels["store"] {
		t.Errorf("failure = %+v", res.Failure)
	}
}

func TestHeapGuardDetectsUnderflow(t *testing.T) {
	im, _ := heapOverflowProgram(t, -4) // front canary
	v, _ := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{NewHeapGuard()}})
	if res := v.Run(); res.Outcome != vm.OutcomeFailure {
		t.Fatalf("underflow missed: %+v", res)
	}
}

func TestHeapGuardAllowsInBounds(t *testing.T) {
	im, _ := heapOverflowProgram(t, 4) // last in-bounds word
	v, _ := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{NewHeapGuard()}})
	if res := v.Run(); res.Outcome != vm.OutcomeExit {
		t.Fatalf("false positive: %+v", res)
	}
}

func TestHeapGuardMissesSkippedBoundary(t *testing.T) {
	// A write that skips over the canary lands in unallocated arena and is
	// missed — the documented limitation (§2.3).
	im, _ := heapOverflowProgram(t, 64)
	v, _ := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{NewHeapGuard()}})
	if res := v.Run(); res.Outcome == vm.OutcomeFailure {
		t.Fatalf("HeapGuard should miss a skip-over write; got failure")
	}
}

func TestHeapGuardLegitimateCanaryValueWrite(t *testing.T) {
	// The app writes the canary value in bounds, then writes over it again:
	// the allocation map lookup must suppress the false positive.
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 8)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EBX, isa.EAX)
		a.MovRI(isa.ECX, 0)
		a.SubRI(isa.ECX, 0x02020203) // ECX = 0xFDFDFDFD (the canary value)
		a.Store(asm.M(isa.EBX, 0), isa.ECX)
		a.MovRI(isa.ECX, 7)
		a.Store(asm.M(isa.EBX, 0), isa.ECX) // target now holds canary value
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	v, _ := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{NewHeapGuard()}})
	if res := v.Run(); res.Outcome != vm.OutcomeExit {
		t.Fatalf("false positive on legitimate canary-value write: %+v", res)
	}
}

func TestHeapGuardDisabled(t *testing.T) {
	im, _ := heapOverflowProgram(t, 8)
	hg := NewHeapGuard()
	hg.Enabled = false
	v, _ := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{hg}})
	if res := v.Run(); res.Outcome != vm.OutcomeExit {
		t.Fatalf("disabled HeapGuard still fired: %+v", res)
	}
}

func TestShadowStackSnapshot(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.Call("outer")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
		a.Label("outer")
		a.Call("inner")
		a.Ret()
		a.Label("inner")
		a.MovRI(isa.EBX, 0x20000000)
		a.Label("site")
		a.CallR(isa.EBX) // firewall failure two frames deep
		a.Ret()
	})
	ss := NewShadowStack()
	v, _ := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{ss, NewMemoryFirewall()}})
	ss.Install(v)
	res := v.Run()
	if res.Outcome != vm.OutcomeFailure {
		t.Fatalf("res = %+v", res)
	}
	st := res.Failure.Stack
	if len(st) != 2 {
		t.Fatalf("stack = %#v, want 2 frames", st)
	}
	// Innermost first: return site in outer, then return site in main.
	if st[0] != labels["outer"]+isa.InstSize || st[1] != labels["main"]+isa.InstSize {
		t.Errorf("stack = %#v", st)
	}
}

func TestShadowStackSurvivesNativeCorruption(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.Call("f")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
		a.Label("f")
		a.MovRI(isa.ECX, 0x20000000)
		a.Store(asm.M(isa.ESP, 0), isa.ECX) // smash native return address
		a.Ret()
	})
	ss := NewShadowStack()
	v, _ := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{ss, NewMemoryFirewall()}})
	ss.Install(v)
	res := v.Run()
	if res.Outcome != vm.OutcomeFailure {
		t.Fatalf("res = %+v", res)
	}
	if len(res.Failure.Stack) != 1 {
		t.Errorf("shadow stack lost frames: %#v", res.Failure.Stack)
	}
}

func TestShadowStackDepthBalanced(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.Call("f")
		a.Call("f")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
		a.Label("f")
		a.Ret()
	})
	ss := NewShadowStack()
	v, _ := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{ss}})
	ss.Install(v)
	if res := v.Run(); res.Outcome != vm.OutcomeExit {
		t.Fatal(res.Outcome)
	}
	if ss.Depth() != 0 {
		t.Errorf("depth = %d after balanced calls", ss.Depth())
	}
}
