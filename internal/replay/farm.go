package replay

import (
	"runtime"
	"time"

	"repro/internal/evaluate"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/repair"
	"repro/internal/vm"
)

// Verdict is the outcome of replaying the recorded failing run under one
// candidate repair.
type Verdict struct {
	RepairID string // stable identifier of the judged candidate
	Index    int    // position in the candidate slice handed to Evaluate

	Outcome  vm.Outcome    // how the replay ended
	ExitCode uint32        // exit status when Outcome is an exit
	Steps    uint64        // instructions the replay executed
	Elapsed  time.Duration // wall clock the replay took

	// Recurred reports that the recorded failure fired again at the same
	// location despite the candidate being in place.
	Recurred bool
	// Survived applies the paper's §2.6 criterion exactly as the live
	// pipeline does: the run neither recurred, nor crashed, nor exited
	// abnormally. A failure at a *different* location does not count
	// against the candidate (it opens its own case).
	Survived bool
	// CleanExit means a normal exit with status 0 — the strongest signal.
	CleanExit bool

	// Err carries a machine-construction or deadline error; the verdict
	// counts as not-survived.
	Err string
}

// Farm evaluates candidate repairs against a recording concurrently: one
// full deterministic replay per candidate on a worker pool of cloned
// machines. This is the offline analog of the community's
// one-candidate-per-node parallel evaluation (§3) — except the "community"
// is a pool of goroutines and the "subsequent execution" is the recorded
// one, so every candidate is judged within a single wall-clock failure.
type Farm struct {
	// Workers bounds concurrent replays; 0 uses GOMAXPROCS.
	Workers int
	// Deadline bounds each candidate's replay in wall-clock time; 0 means
	// unbounded (the machine's step budget still terminates hangs, so a
	// deadline only matters when wall-clock latency does).
	Deadline time.Duration
	// Obs, when set, records per-candidate replay durations into the
	// "replay.candidate" histogram and counts deadline misses in
	// "replay.deadline_misses". Nil disables recording.
	Obs *obs.Tracer
}

// Evaluate replays the recording once per candidate repair and returns one
// verdict per candidate, in input order. failureID is the case the
// candidates belong to: its previously deployed repair (if any) is removed
// from the replayed patch set, and candidate patch IDs are scoped under
// it. Machines are independent — candidates share nothing but the
// read-only recording — so verdicts are order-independent and the farm is
// deterministic for a fixed recording.
func (f *Farm) Evaluate(rec *Recording, failureID string, cands []*repair.Repair) []Verdict {
	verdicts := make([]Verdict, len(cands))
	if len(cands) == 0 {
		return verdicts
	}
	img, err := rec.DecodeImage()
	if err != nil {
		for i, r := range cands {
			verdicts[i] = Verdict{RepairID: r.ID(), Index: i, Err: err.Error()}
		}
		return verdicts
	}

	workers := f.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	jobs := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range jobs {
				verdicts[i] = f.evalOne(rec, img, failureID, cands[i], i)
			}
		}()
	}
	for i := range cands {
		jobs <- i
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		<-done
	}
	return verdicts
}

// evalOne replays the recording under one candidate, honouring the farm
// deadline. On deadline the replay goroutine is abandoned — its machine
// still terminates at the recording's step budget, so nothing leaks
// unboundedly.
func (f *Farm) evalOne(rec *Recording, img *image.Image, failureID string, cand *repair.Repair, idx int) Verdict {
	if f.Deadline <= 0 {
		v := runVerdict(rec, img, failureID, cand, idx)
		f.Obs.Registry().Histogram("replay.candidate").Observe(v.Elapsed)
		return v
	}
	ch := make(chan Verdict, 1)
	go func() { ch <- runVerdict(rec, img, failureID, cand, idx) }()
	select {
	case v := <-ch:
		f.Obs.Registry().Histogram("replay.candidate").Observe(v.Elapsed)
		return v
	case <-time.After(f.Deadline):
		f.Obs.Counter("replay.deadline_misses").Inc()
		return Verdict{RepairID: cand.ID(), Index: idx, Err: "replay deadline exceeded"}
	}
}

func runVerdict(rec *Recording, img *image.Image, failureID string, cand *repair.Repair, idx int) Verdict {
	start := time.Now()
	machine, err := rec.NewMachine(img, cand.BuildPatches(failureID), failureID)
	if err != nil {
		return Verdict{RepairID: cand.ID(), Index: idx, Err: err.Error()}
	}
	res := machine.Run()
	v := Verdict{
		RepairID: cand.ID(),
		Index:    idx,
		Outcome:  res.Outcome,
		ExitCode: res.ExitCode,
		Steps:    res.Steps,
		Elapsed:  time.Since(start),
	}
	recPC, recorded := rec.FailurePC()
	v.Recurred = recorded && res.Failure != nil && res.Failure.PC == recPC
	v.CleanExit = res.Outcome == vm.OutcomeExit && res.ExitCode == 0
	crashed := res.Outcome == vm.OutcomeCrash ||
		(res.Outcome == vm.OutcomeExit && res.ExitCode != 0)
	v.Survived = !v.Recurred && !crashed
	return v
}

// Apply feeds farm verdicts into an evaluator — the same credit/debit the
// live pipeline applies after each evaluation run — and returns how many
// candidates survived. Verdicts that carry an error (deadline exceeded,
// machine construction failure) are no evidence about the repair and are
// skipped: the candidate keeps its score and live evaluation decides.
// After Apply, Evaluator.Best() is the repair the farm recommends
// deploying on the next live execution.
func Apply(verdicts []Verdict, ev *evaluate.Evaluator) (survivors int) {
	for i := range verdicts {
		if verdicts[i].Err != "" {
			continue
		}
		ev.Record(verdicts[i].RepairID, verdicts[i].Survived)
		if verdicts[i].Survived {
			survivors++
		}
	}
	return survivors
}
