// Suite-drift guard and BENCH lineage validation: every Benchmark
// function in the repo must be accounted for in internal/perfvc's
// registry (tracked or excluded with a reason), and every committed
// BENCH_pr*.json must honor the profile contract — so the performance
// lineage stays regenerable and a new benchmark cannot silently escape
// regression tracking.
package repro_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/perfvc"
)

// TestBenchmarkSuiteDrift fails when a `func Benchmark*` exists that the
// perfvc registry neither tracks nor excludes, when a registered or
// excluded name no longer exists, or when one moved packages. Fix by
// editing internal/perfvc/suite.go: register the benchmark with a
// benchtime and tolerance class, or exclude it with a reason.
func TestBenchmarkSuiteDrift(t *testing.T) {
	repo, err := perfvc.RepoBenchmarks(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(repo) == 0 {
		t.Fatal("benchmark scan found nothing — the drift guard is broken, not the suite")
	}
	for _, violation := range perfvc.Registry().Check(repo) {
		t.Error(violation)
	}
}

// TestBenchLineage validates the committed BENCH_pr*.json files: every
// file carries the established meta block (pr, date, regenerate
// commands), and files in the perfvc profile shape additionally pass the
// full baseline contract (>= 3 samples, ordered stats).
func TestBenchLineage(t *testing.T) {
	paths, err := filepath.Glob("BENCH_pr*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no BENCH_pr*.json lineage found at the repo root")
	}
	numbered := regexp.MustCompile(`^BENCH_pr(\d+)\.json$`)
	for _, path := range paths {
		t.Run(path, func(t *testing.T) {
			if !numbered.MatchString(filepath.Base(path)) {
				t.Fatalf("%s does not match the BENCH_pr<N>.json naming scheme", path)
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var shape struct {
				Meta       perfvc.Meta     `json:"meta"`
				Benchmarks json.RawMessage `json:"benchmarks"`
			}
			if err := json.Unmarshal(raw, &shape); err != nil {
				t.Fatalf("not valid JSON: %v", err)
			}
			if shape.Meta.PR <= 0 {
				t.Error("meta.pr missing")
			}
			if shape.Meta.Date == "" {
				t.Error("meta.date missing")
			}
			if len(shape.Meta.Regenerate) == 0 {
				t.Error("meta.regenerate missing — a baseline nobody can reproduce is not a baseline")
			}
			if len(shape.Benchmarks) > 0 {
				p, err := perfvc.Load(path)
				if err != nil {
					t.Fatalf("perfvc profile shape but Load failed: %v", err)
				}
				if err := p.Validate(3); err != nil {
					t.Errorf("baseline contract: %v", err)
				}
			}
		})
	}
}

// TestLegacyBenchBackfill pins the PR 3 headline numbers through the
// legacy converter: the dispatch rewrite's 77.65 ns/op / 115.9 MIPS
// "after" tree converts to a comparable profile, self-comparison yields
// zero regressions, and the PR 6 telemetry BENCH file (stage tables, no
// per-benchmark metrics) is rejected rather than misread.
func TestLegacyBenchBackfill(t *testing.T) {
	raw, err := os.ReadFile("BENCH_pr3.json")
	if err != nil {
		t.Fatal(err)
	}
	p, err := perfvc.ConvertLegacy(raw, "after")
	if err != nil {
		t.Fatal(err)
	}
	hot, ok := p.Benchmarks["BenchmarkDispatchHot"]
	if !ok {
		t.Fatalf("BenchmarkDispatchHot missing from converted profile: %v", p.Names())
	}
	if ns := hot.Metrics["ns/op"]; ns.Median != 77.65 || ns.Samples != 1 {
		t.Errorf("ns/op = %+v, want the recorded 77.65 as a single sample", ns)
	}
	if mips := hot.Metrics["MIPS"]; mips.Median != 115.9 {
		t.Errorf("MIPS = %+v, want the recorded 115.9", mips)
	}
	rep := perfvc.Compare(p, p, perfvc.Options{Suite: perfvc.Registry()})
	if rep.Regressions != 0 || rep.Improvements != 0 {
		t.Errorf("legacy self-comparison produced verdicts: %+v", rep.Deltas)
	}

	raw6, err := os.ReadFile("BENCH_pr6.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := perfvc.ConvertLegacy(raw6, "after"); err == nil {
		t.Error("BENCH_pr6.json's telemetry shape converted — it has no benchmark metrics")
	}
}
