package perfvc

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readGolden loads a captured `go test -bench` output file.
func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestParseVMGolden parses real captured internal/vm bench output
// (-count 3, -benchmem, custom MIPS and instrs/op metrics) into stable
// structs: per-line samples plus per-benchmark folded statistics.
func TestParseVMGolden(t *testing.T) {
	out, err := ParseBench(bytes.NewReader(readGolden(t, "vm_count3.txt")))
	if err != nil {
		t.Fatal(err)
	}
	if out.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", out.CPU)
	}
	if out.PackageFailed || len(out.Failed) != 0 || len(out.Skipped) != 0 {
		t.Errorf("unexpected failure markers: %+v", out)
	}
	if len(out.Samples) != 12 {
		t.Fatalf("got %d samples, want 12 (4 benchmarks x -count 3)", len(out.Samples))
	}
	first := out.Samples[0]
	if first.Name != "BenchmarkDispatchHot" || first.Iters != 2000 {
		t.Errorf("first sample = %+v", first)
	}
	wantFirst := map[string]float64{
		"ns/op": 94.20, "MIPS": 95.60, "instrs/op": 9.005, "B/op": 0, "allocs/op": 0,
	}
	for unit, v := range wantFirst {
		if got := first.Metrics[unit]; got != v {
			t.Errorf("first sample %s = %v, want %v", unit, got, v)
		}
	}

	stats := fold(out.Samples)
	if len(stats) != 4 {
		t.Fatalf("folded %d benchmarks, want 4", len(stats))
	}
	hot := stats["BenchmarkDispatchHot"]["ns/op"]
	if hot.Samples != 3 || hot.Min != 77.88 || hot.Max != 94.38 || hot.Median != 94.20 {
		t.Errorf("DispatchHot ns/op = %+v", hot)
	}
	copyB := stats["BenchmarkCopyB"]["MB/s"]
	if copyB.Samples != 3 || copyB.Median != 25350.38 || copyB.Min != 15299.94 || copyB.Max != 35862.35 {
		t.Errorf("CopyB MB/s = %+v", copyB)
	}
	hooked := stats["BenchmarkDispatchHooked"]["allocs/op"]
	if hooked.Median != 9 || hooked.Spread() != 0 {
		t.Errorf("DispatchHooked allocs/op = %+v", hooked)
	}
}

// TestParseSubBenchGolden parses real captured root-package output with
// sub-benchmarks, custom count metrics, and GOMAXPROCS name suffixes:
// "-2" must be stripped while "Sequential-30candidates" keeps its own
// trailing "-30candidates".
func TestParseSubBenchGolden(t *testing.T) {
	out, err := ParseBench(bytes.NewReader(readGolden(t, "root_subbench.txt")))
	if err != nil {
		t.Fatal(err)
	}
	stats := fold(out.Samples)
	wantNames := []string{
		"BenchmarkSnapshotClone/Snapshot",
		"BenchmarkSnapshotClone/Restore",
		"BenchmarkSnapshotClone/RestoreAndRun",
		"BenchmarkReplayFarm/Sequential-30candidates",
		"BenchmarkReplayFarm/Parallel-30candidates",
	}
	for _, name := range wantNames {
		if _, ok := stats[name]; !ok {
			t.Errorf("missing folded benchmark %q (have %v)", name, keys(stats))
		}
	}
	if len(stats) != len(wantNames) {
		t.Errorf("folded %d benchmarks, want %d", len(stats), len(wantNames))
	}
	if pages := stats["BenchmarkSnapshotClone/Snapshot"]["pages"]; pages.Median != 67 || pages.Samples != 2 {
		t.Errorf("Snapshot pages = %+v", pages)
	}
	if surv := stats["BenchmarkReplayFarm/Sequential-30candidates"]["survivors"]; surv.Median != 21 {
		t.Errorf("survivors = %+v", surv)
	}
	seq := stats["BenchmarkReplayFarm/Sequential-30candidates"]["ns/op"]
	if seq.Min != 12606384 || seq.Max != 12759907 || seq.Median != (12606384.0+12759907.0)/2 {
		t.Errorf("Sequential ns/op = %+v (even count: median must be the middle-two mean)", seq)
	}
}

// TestParseVerboseSkipFailGolden parses real captured -v output with a
// skipped benchmark, a failed benchmark, custom ReportMetric units
// ("mips", "sim-MB/s"), and the bare name-announcement lines -v
// interleaves (which must not parse as results).
func TestParseVerboseSkipFailGolden(t *testing.T) {
	out, err := ParseBench(bytes.NewReader(readGolden(t, "scratch_verbose.txt")))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Skipped) != 1 || out.Skipped[0] != "BenchmarkSkipsOnCI" {
		t.Errorf("skipped = %v", out.Skipped)
	}
	if len(out.Failed) != 1 || out.Failed[0] != "BenchmarkBroken" {
		t.Errorf("failed = %v", out.Failed)
	}
	if !out.PackageFailed {
		t.Error("package FAIL marker not detected")
	}
	stats := fold(out.Samples)
	if len(stats) != 2 {
		t.Fatalf("folded %d benchmarks, want 2 (skip and fail produce no samples): %v", len(stats), keys(stats))
	}
	if mips := stats["BenchmarkSimDispatch"]["mips"]; mips.Samples != 2 || mips.Max != 31579 {
		t.Errorf("custom mips metric = %+v", mips)
	}
	if sim := stats["BenchmarkSimCopy"]["sim-MB/s"]; sim.Samples != 2 || sim.Min != 130666 || sim.Max != 130984 {
		t.Errorf("custom sim-MB/s metric = %+v", sim)
	}
}

// TestParseRejectsMalformedResultLines pins the no-guessing contract: a
// line that starts like a result but carries unparseable metrics is an
// error, not a silently dropped sample.
func TestParseRejectsMalformedResultLines(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX 1000 12.5 ns/op trailing",     // odd metric fields
		"BenchmarkX 1000 twelve ns/op",            // non-numeric value
		"BenchmarkX 1000 12.5 ns/op nan-ish MB/s", // second pair bad
	} {
		if _, err := ParseBench(strings.NewReader(bad + "\n")); err == nil {
			t.Errorf("ParseBench accepted malformed line %q", bad)
		}
	}
	// But a benchmark's own log line starting with "Benchmark" (no
	// iteration count) is ignored, not an error.
	out, err := ParseBench(strings.NewReader("BenchmarkX logging something\n"))
	if err != nil || len(out.Samples) != 0 {
		t.Errorf("log-looking line: samples=%d err=%v", len(out.Samples), err)
	}
}

// keys lists a fold result's benchmark names for error messages.
func keys(m map[string]map[string]Stat) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
