// A two-tier application community over TCP: a central manager, two
// aggregators, and three node managers on localhost.
//
// The walkthrough narrates the §3 story at the shape README.md's
// "two-tier community" section describes, plus the defenses of the §5
// discussion:
//
//  1. a victim node absorbs an attack until the community finds a patch
//     (its aggregator flushing a compacted batch upstream each round);
//  2. a peer in the same region survives its FIRST exposure — protection
//     without exposure, served from the aggregator's directive cache;
//  3. the victim's aggregator crashes; the victim fails over to the
//     sibling region with Node.Attach and keeps its protection (all
//     durable state is keyed by node ID at the manager);
//  4. an adversarial node spoofs a failure report and is quarantined —
//     its later, well-formed traffic stays ignored.
//
// Run:  go run ./examples/community
package main

import (
	"fmt"
	"log"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/redteam"
	"repro/internal/vm"
	"repro/internal/webapp"
)

func main() {
	// The protected binary and a pre-learned invariant database (the
	// Blue Team run of §4.2.1).
	app, err := webapp.Build()
	if err != nil {
		log.Fatal(err)
	}
	seed, _, err := core.Learn(app.Image, core.LearnConfig{
		Inputs: [][]byte{redteam.LearningCorpus()},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The central manager: replay farm armed (candidates are judged
	// offline against shipped recordings) and reports vetted (tampered
	// input quarantines the sender).
	manager, err := community.NewManager(community.ManagerConfig{
		Image:           app.Image,
		Seed:            seed,
		BootstrapInputs: [][]byte{redteam.LearningCorpus()},
		ReplayWorkers:   -1,
		VetReports:      true,
		// Only the provisioned tier may speak for other nodes.
		TrustedAggregators: []string{"agg-west", "agg-east"},
	})
	if err != nil {
		log.Fatal(err)
	}
	managerL, err := community.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer managerL.Close()
	go acceptLoop(managerL, func(c community.Conn) error { return manager.Serve(c) })
	fmt.Printf("manager listening on %s\n", managerL.Addr())

	// The aggregator tier: each aggregator dials the manager upstream
	// and accepts its region's nodes on its own listener — nodes speak
	// the identical protocol to either tier.
	newAggregator := func(id string) (*community.Aggregator, *community.Listener) {
		up, err := community.Dial(managerL.Addr())
		if err != nil {
			log.Fatal(err)
		}
		agg, err := community.NewAggregator(community.AggregatorConfig{
			ID: id, Image: app.Image, Upstream: up, VetReports: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		l, err := community.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go acceptLoop(l, func(c community.Conn) error { return agg.Serve(c) })
		fmt.Printf("aggregator %q listening on %s\n", id, l.Addr())
		return agg, l
	}
	aggWest, westL := newAggregator("agg-west")
	aggEast, eastL := newAggregator("agg-east")
	defer eastL.Close()

	attach := func(id, addr string) *community.Node {
		conn, err := community.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		n := community.NewNode(id, app.Image, nil)
		if err := n.Attach(conn); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("node %q attached\n", id)
		return n
	}

	// Region west: the victim (recording failures, so the manager's farm
	// can rank candidates offline) and an unexposed peer.
	victim := attach("victim", westL.Addr())
	victim.RecordFailures = true
	peer := attach("peer", westL.Addr())

	ex := exploit("290162")
	attack := redteam.AttackInput(app, ex, 0)

	// 1. The victim absorbs the attack; after each presentation its
	// aggregator flushes the region's reports (and the failing-run
	// recording) upstream and refreshes its directive cache.
	fmt.Printf("\n[1] attacking %q with exploit %s...\n", victim.ID, ex.Bugzilla)
	for i := 1; ; i++ {
		res, err := victim.RunOnce(attack)
		if err != nil {
			log.Fatal(err)
		}
		if err := aggWest.Flush(); err != nil {
			log.Fatal(err)
		}
		if res.Outcome == vm.OutcomeExit && res.ExitCode == 0 {
			fmt.Printf("    presentation %d: survived — community patch adopted\n", i)
			break
		}
		fmt.Printf("    presentation %d: %v (community responding)\n", i, res.Outcome)
		if i > 12 {
			log.Fatal("community never patched")
		}
	}

	// 2. The peer was never attacked; its sync is served from the
	// aggregator's cache, and it survives its first exposure.
	res, err := peer.RunOnce(attack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[2] %q survives its FIRST exposure: %v (directives from the %q cache)\n",
		peer.ID, res.Outcome == vm.OutcomeExit && res.ExitCode == 0, "agg-west")

	// 3. Region west dies. The victim fails over to region east and is
	// still protected: its assignment lives at the manager, keyed by ID.
	_ = aggWest.Close()
	_ = westL.Close()
	east, err := community.Dial(eastL.Addr())
	if err != nil {
		log.Fatal(err)
	}
	if err := victim.Attach(east); err != nil {
		log.Fatal(err)
	}
	if err := aggEast.Flush(); err != nil {
		log.Fatal(err)
	}
	res, err = victim.RunOnce(attack)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n[3] %q failed over to %q and still survives the attack: %v\n",
		victim.ID, "agg-east", res.Outcome == vm.OutcomeExit && res.ExitCode == 0)

	// 4. An adversary spoofs a failure outside the binary's code range —
	// speaking the raw protocol, as an attacker would. The edge sanity
	// check quarantines it on the spot.
	liarConn, err := community.Dial(eastL.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer liarConn.Close()
	spoofed, err := community.NewEnvelope(community.MsgRunReport, community.RunReport{
		NodeID:  "liar",
		Outcome: uint8(vm.OutcomeFailure),
		Failure: &community.FailureInfo{PC: app.Image.End() + 0x1000, Monitor: "MemoryFirewall"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := liarConn.Send(spoofed); err != nil {
		log.Fatal(err)
	}
	if _, err := liarConn.Recv(); err != nil { // the reply reveals nothing
		log.Fatal(err)
	}
	if err := aggEast.Flush(); err != nil {
		log.Fatal(err)
	}
	quarantined := manager.Quarantined()
	fmt.Printf("\n[4] %q spoofed an out-of-range failure; quarantined: %v (%s)\n",
		"liar", len(quarantined) == 1, quarantined["liar"])
}

// acceptLoop serves every connection a listener yields.
func acceptLoop(l *community.Listener, serve func(community.Conn) error) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go func() { _ = serve(c) }()
	}
}

// exploit finds a Red Team exploit by Bugzilla id.
func exploit(id string) redteam.Exploit {
	for _, e := range redteam.AllExploits() {
		if e.Bugzilla == id {
			return e
		}
	}
	log.Fatalf("unknown exploit %s", id)
	return redteam.Exploit{}
}
