package cfg

import "repro/internal/vm"

// Plugin feeds first-time basic-block executions into a shared CFG
// database. The database persists across VM instances (runs), so the CFG
// knowledge accumulates over the application's lifetime in the community,
// exactly like the paper's "database of known control flow graphs".
type Plugin struct {
	DB *DB
}

// NewPlugin wraps a CFG database as an execution-environment plugin.
func NewPlugin(db *DB) *Plugin { return &Plugin{DB: db} }

// Name implements vm.Plugin.
func (p *Plugin) Name() string { return "cfg" }

// Instrument implements vm.Plugin: entering the code cache is the block's
// first execution, which is the discovery trigger of §2.2.3.
func (p *Plugin) Instrument(_ *vm.VM, b *vm.Block) {
	p.DB.NoteBlockExec(b.Start)
}
