package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: NOP, X: NoReg},
		{Op: MOVRI, A: EAX, X: NoReg, Imm: -42},
		{Op: MOVRR, A: EBX, B: ECX, X: NoReg},
		{Op: LOAD, A: EAX, B: EBP, X: ESI, Scale: 2, Imm: 16},
		{Op: STORE, A: EDX, B: ESP, X: NoReg, Imm: -8},
		{Op: CALLM, B: EAX, X: NoReg, Imm: 4},
		{Op: JMP, X: NoReg, Imm: 0x100},
		{Op: SYS, X: NoReg, Imm: SysAlloc},
		{Op: CMPRI, A: EDI, X: NoReg, Imm: 100000},
	}
	for _, in := range cases {
		enc := in.Encode()
		got, err := Decode(enc[:])
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		if got != in {
			t.Errorf("round trip: got %+v want %+v", got, in)
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	// Any structurally valid instruction must survive an encode/decode
	// round trip unchanged.
	f := func(op uint8, a, b, x uint8, scale uint8, imm int32) bool {
		in := Inst{
			Op:    Op(op % uint8(opCount)),
			A:     Reg(a % NumRegs),
			B:     Reg(b % NumRegs),
			X:     Reg(x % NumRegs),
			Scale: scale % 4,
			Imm:   imm,
		}
		enc := in.Encode()
		got, err := Decode(enc[:])
		return err == nil && got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte{0xFF, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("invalid opcode accepted")
	}
	if _, err := Decode([]byte{byte(NOP), 0, 0, 0xAB, 0, 0, 0, 0}); err == nil {
		t.Error("nonzero reserved byte accepted")
	}
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Error("short buffer accepted")
	}
	// A-register required but encoded as NoReg.
	bad := Inst{Op: MOVRI, A: NoReg, X: NoReg}.Encode()
	if _, err := Decode(bad[:]); err == nil {
		t.Error("missing A register accepted")
	}
}

func TestOpClassification(t *testing.T) {
	indirect := []Op{JMPR, CALLR, CALLM, RET}
	for _, op := range indirect {
		if !op.IsIndirect() {
			t.Errorf("%s should be indirect", op)
		}
		if !op.EndsBlock() {
			t.Errorf("%s should end a block", op)
		}
	}
	direct := []Op{MOVRI, LOAD, STORE, ADDRR, PUSH, POP, LEA}
	for _, op := range direct {
		if op.IsIndirect() {
			t.Errorf("%s should not be indirect", op)
		}
		if op.EndsBlock() {
			t.Errorf("%s should not end a block", op)
		}
	}
	if !CALL.IsCall() || !CALLR.IsCall() || !CALLM.IsCall() {
		t.Error("call forms misclassified")
	}
	if !JE.IsCondBranch() || !JAE.IsCondBranch() || JMP.IsCondBranch() {
		t.Error("conditional branch misclassified")
	}
	if !STORE.IsStore() || !STOREB.IsStore() || LOAD.IsStore() {
		t.Error("store misclassified")
	}
}

func TestSlots(t *testing.T) {
	tests := []struct {
		in   Inst
		want []SlotKind
	}{
		{Inst{Op: LOAD, A: EAX, B: EBP, X: NoReg, Imm: 8},
			[]SlotKind{SlotRegB, SlotAddr, SlotMemVal}},
		{Inst{Op: LOAD, A: EAX, B: EBP, X: ESI, Scale: 2},
			[]SlotKind{SlotRegB, SlotRegX, SlotAddr, SlotMemVal}},
		{Inst{Op: STORE, A: EDX, B: EBX, X: NoReg},
			[]SlotKind{SlotRegA, SlotRegB, SlotAddr}},
		{Inst{Op: CALLM, B: EAX, X: NoReg, Imm: 0},
			[]SlotKind{SlotRegB, SlotAddr, SlotMemVal}},
		{Inst{Op: ADDRR, A: EAX, B: ECX, X: NoReg},
			[]SlotKind{SlotRegA, SlotRegB}},
		{Inst{Op: CMPRI, A: EAX, X: NoReg, Imm: 1},
			[]SlotKind{SlotRegA}},
		{Inst{Op: RET, X: NoReg},
			[]SlotKind{SlotAddr, SlotMemVal}},
		{Inst{Op: MOVRI, A: EAX, X: NoReg, Imm: 1}, nil},
		{Inst{Op: JMP, X: NoReg, Imm: 8}, nil},
	}
	for _, tc := range tests {
		got := Slots(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v want kinds %v", tc.in, got, tc.want)
			continue
		}
		for i, s := range got {
			if s.Kind != tc.want[i] {
				t.Errorf("%s slot %d: got %v want %v", tc.in, i, s.Kind, tc.want[i])
			}
		}
	}
}

func TestTargetSlot(t *testing.T) {
	callm := Inst{Op: CALLM, B: EAX, X: NoReg, Imm: 0}
	ts := TargetSlot(callm)
	if ts < 0 || Slots(callm)[ts].Kind != SlotMemVal {
		t.Errorf("CALLM target slot = %d", ts)
	}
	callr := Inst{Op: CALLR, A: EBX, X: NoReg}
	if ts := TargetSlot(callr); ts != 0 || Slots(callr)[ts].Kind != SlotRegA {
		t.Errorf("CALLR target slot = %d", ts)
	}
	ret := Inst{Op: RET, X: NoReg}
	if ts := TargetSlot(ret); Slots(ret)[ts].Kind != SlotMemVal {
		t.Errorf("RET target slot = %d", ts)
	}
	if ts := TargetSlot(Inst{Op: MOVRI, A: EAX, X: NoReg}); ts != -1 {
		t.Errorf("MOVRI target slot = %d, want -1", ts)
	}
}

func TestSlotSettable(t *testing.T) {
	if (SlotSpec{Kind: SlotAddr}).Settable() {
		t.Error("SlotAddr must not be settable")
	}
	for _, k := range []SlotKind{SlotRegA, SlotRegB, SlotRegX, SlotMemVal} {
		if !(SlotSpec{Kind: k}).Settable() {
			t.Errorf("%v should be settable", k)
		}
	}
}

func TestStringRendering(t *testing.T) {
	in := Inst{Op: LOAD, A: EAX, B: EBP, X: ESI, Scale: 2, Imm: -4}
	if got := in.String(); got != "load eax, [ebp+esi<<2-4]" {
		t.Errorf("String() = %q", got)
	}
	if got := (Inst{Op: RET, X: NoReg}).String(); got != "ret" {
		t.Errorf("ret String() = %q", got)
	}
}

func TestSextBSlotAndCopyBSlots(t *testing.T) {
	sx := Inst{Op: SEXTB, A: ECX, X: NoReg}
	slots := Slots(sx)
	if len(slots) != 1 || slots[0].Kind != SlotRegA || slots[0].Reg != ECX {
		t.Errorf("sextb slots = %v", slots)
	}
	cb := Inst{Op: COPYB, X: NoReg}
	cs := Slots(cb)
	if len(cs) != 3 || cs[0].Reg != ECX || cs[1].Reg != ESI || cs[2].Reg != EDI {
		t.Errorf("copyb slots = %v", cs)
	}
	for _, s := range cs {
		if !s.Settable() {
			t.Errorf("copyb slot %v not settable", s)
		}
	}
	if COPYB.EndsBlock() || COPYB.IsIndirect() || COPYB.IsStore() {
		t.Error("copyb misclassified: plain instruction with implicit operands")
	}
}
