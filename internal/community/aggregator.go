package community

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/daikon"
	"repro/internal/image"
	"repro/internal/replay"
)

// AggregatorConfig assembles one region's aggregator.
type AggregatorConfig struct {
	// ID names the aggregator on the wire (it is the NodeID of the
	// compacted batches it sends upstream).
	ID string
	// Image is the protected binary, for edge sanity checks.
	Image *image.Image
	// Upstream is the connection to the central manager. (Only the
	// manager can terminate an aggregated batch — aggregators do not
	// chain under each other.)
	Upstream Conn
	// FlushEvery auto-flushes once this many run reports are buffered;
	// 0 flushes only when Flush is called (e.g. once per soak round).
	FlushEvery int
	// VetReports enables the edge sanity checks: reports, uploads, and
	// recordings whose PCs fall outside the image's code range quarantine
	// the sending node locally — the poisoned input never travels
	// upstream — and the verdict is reported to the manager with the next
	// flush. Checks that need global state (observation provenance) or a
	// replay farm (recording reproduction) remain the manager's.
	VetReports bool
}

// Aggregator is the middle tier of the two-level community: it serves a
// region of member nodes exactly like a manager would — same protocol,
// same Conn transport — while speaking to the central manager as a single,
// well-batched client. It merges its region's learning uploads into one
// database, deduplicates failing-run recordings per failure location,
// buffers run reports in arrival order, and forwards the lot as one
// compacted MsgBatch per flush. The manager's DirectivesSet reply is
// cached per member node, so node syncs between flushes cost no upstream
// traffic at all: central-manager load scales with the number of
// aggregators, not the number of nodes.
//
// Members may attach, detach, and re-attach freely (see Node.Attach): all
// community state is keyed by node ID at the manager, so a node that
// crashes mid-campaign and comes back through a different aggregator keeps
// its learning shard and its repair assignments.
type Aggregator struct {
	conf AggregatorConfig

	mu    sync.Mutex
	nodes map[string]bool       // member IDs seen (registered upstream at next flush)
	dirs  map[string]Directives // per-member directive cache from the last flush
	seq   uint64                // manager sequence as of the last flush

	reports    []RunReport
	learn      *daikon.DB
	learnCount int
	recRaw     map[uint32][]byte // pending recordings, deduped per failure PC
	recFrom    map[uint32]string // capturing node per pending recording

	quarantined map[string]bool
	newlyQuar   []string // edge verdicts not yet reported upstream
	imgWire     []byte   // the protected image's wire form, for recording identity checks

	conns    map[Conn]bool // live member connections, for Close
	closed   bool
	upstream int // envelopes sent upstream (the number the hierarchy minimizes)
	flushes  int
}

// NewAggregator builds an aggregator speaking to the manager over
// conf.Upstream.
func NewAggregator(conf AggregatorConfig) (*Aggregator, error) {
	if conf.ID == "" {
		return nil, fmt.Errorf("community: aggregator needs an ID")
	}
	if conf.Image == nil {
		return nil, fmt.Errorf("community: aggregator needs an image")
	}
	if conf.Upstream == nil {
		return nil, fmt.Errorf("community: aggregator needs an upstream connection")
	}
	return &Aggregator{
		conf:        conf,
		nodes:       make(map[string]bool),
		dirs:        make(map[string]Directives),
		recRaw:      make(map[uint32][]byte),
		recFrom:     make(map[uint32]string),
		quarantined: make(map[string]bool),
		imgWire:     conf.Image.Marshal(),
		conns:       make(map[Conn]bool),
	}, nil
}

// Serve handles one member connection until it closes; run it in a
// goroutine per connection, like Manager.Serve.
func (a *Aggregator) Serve(conn Conn) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		_ = conn.Close()
		return fmt.Errorf("community: aggregator %s is closed", a.conf.ID)
	}
	a.conns[conn] = true
	a.mu.Unlock()
	defer func() {
		// Drop the tracking entry when the connection dies, so a
		// long-lived aggregator under churn (members re-attaching over
		// fresh connections for years) holds only live connections.
		a.mu.Lock()
		delete(a.conns, conn)
		a.mu.Unlock()
		_ = conn.Close()
	}()
	for {
		env, err := conn.Recv()
		if err != nil {
			return err
		}
		reply, err := a.handle(env)
		if err != nil {
			return err
		}
		if err := conn.Send(reply); err != nil {
			return err
		}
	}
}

// handle buffers one member message and answers it from the directive
// cache.
func (a *Aggregator) handle(env Envelope) (Envelope, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch env.Kind {
	case MsgHello:
		var h Hello
		if err := decodePayload(env.Payload, &h); err != nil {
			return Envelope{}, err
		}
		if err := requireSender(h.NodeID); err != nil {
			return Envelope{}, err
		}
		_, known := a.nodes[h.NodeID]
		a.nodes[h.NodeID] = true
		if !known && a.flushes > 0 {
			// A mid-campaign join: flush now so the newcomer is
			// registered upstream and leaves with real directives —
			// §3's protection without exposure must survive the cache
			// tier. (Cold-start attaches, before any flush, register
			// locally: the whole region is new and flushes soon anyway.)
			if err := a.flushLocked(); err != nil {
				return Envelope{}, err
			}
		}
		return a.cachedDirectives(h.NodeID)
	case MsgRunReport:
		var rep RunReport
		if err := decodePayload(env.Payload, &rep); err != nil {
			return Envelope{}, err
		}
		if err := requireSender(rep.NodeID); err != nil {
			return Envelope{}, err
		}
		a.nodes[rep.NodeID] = true
		a.bufferReport(&rep)
		if err := a.maybeFlushLocked(); err != nil {
			return Envelope{}, err
		}
		return a.cachedDirectives(rep.NodeID)
	case MsgLearnUpload:
		var up LearnUpload
		if err := decodePayload(env.Payload, &up); err != nil {
			return Envelope{}, err
		}
		if err := requireSender(up.NodeID); err != nil {
			return Envelope{}, err
		}
		a.nodes[up.NodeID] = true
		if err := a.bufferLearnDB(up.NodeID, up.DB); err != nil {
			return Envelope{}, err
		}
		return a.cachedDirectives(up.NodeID)
	case MsgRecording:
		var up RecordingUpload
		if err := decodePayload(env.Payload, &up); err != nil {
			return Envelope{}, err
		}
		if err := requireSender(up.NodeID); err != nil {
			return Envelope{}, err
		}
		a.nodes[up.NodeID] = true
		if err := a.bufferRecording(up.NodeID, up.Recording); err != nil {
			return Envelope{}, err
		}
		return a.cachedDirectives(up.NodeID)
	case MsgBatch:
		var b Batch
		if err := decodePayload(env.Payload, &b); err != nil {
			return Envelope{}, err
		}
		if len(b.NodeIDs) > 0 {
			return Envelope{}, fmt.Errorf("community: aggregator %s cannot relay an aggregated batch", a.conf.ID)
		}
		if err := requireSender(b.NodeID); err != nil {
			return Envelope{}, err
		}
		a.nodes[b.NodeID] = true
		for _, raw := range b.LearnDBs {
			if err := a.bufferLearnDB(b.NodeID, raw); err != nil {
				return Envelope{}, err
			}
		}
		for i := range b.Reports {
			a.bufferReport(&b.Reports[i])
		}
		for _, raw := range b.Recordings {
			if err := a.bufferRecording(b.NodeID, raw); err != nil {
				return Envelope{}, err
			}
		}
		if err := a.maybeFlushLocked(); err != nil {
			return Envelope{}, err
		}
		return a.cachedDirectives(b.NodeID)
	default:
		return Envelope{}, fmt.Errorf("community: aggregator %s: unexpected message %v", a.conf.ID, env.Kind)
	}
}

// cachedDirectives answers a member from the per-node cache. A member the
// cache has never seen gets the empty directive set at sequence 0 — NOT
// the cached sequence: the member is about to run without this phase's
// patches, and stamping its reports with the current sequence would let an
// unprotected newcomer's failure demote a community-adopted repair. Its
// real directives arrive with the next flush. Called with a.mu held.
func (a *Aggregator) cachedDirectives(nodeID string) (Envelope, error) {
	d, ok := a.dirs[nodeID]
	if !ok {
		d = Directives{}
	}
	return NewEnvelope(MsgDirectives, d)
}

// bufferReport queues one run report for the next flush, dropping it if
// the sender is quarantined or the report fails the edge checks. Called
// with a.mu held.
func (a *Aggregator) bufferReport(rep *RunReport) {
	if a.quarantined[rep.NodeID] {
		return
	}
	if a.conf.VetReports {
		if reason := checkReportStatic(a.conf.Image, rep); reason != "" {
			a.quarantineLocked(rep.NodeID)
			return
		}
	}
	a.reports = append(a.reports, *rep)
}

// bufferLearnDB folds one member's learning upload into the region
// database. Called with a.mu held.
func (a *Aggregator) bufferLearnDB(nodeID string, raw []byte) error {
	if a.quarantined[nodeID] {
		return nil
	}
	db, err := daikon.UnmarshalDB(raw)
	if err != nil {
		return err
	}
	if a.conf.VetReports {
		if reason := checkLearnDBStatic(a.conf.Image, db); reason != "" {
			a.quarantineLocked(nodeID)
			return nil
		}
	}
	if a.learn == nil {
		a.learn = db
	} else {
		a.learn.Merge(db, daikon.DefaultMaxOneOf)
	}
	a.learnCount++
	return nil
}

// bufferRecording queues one failing-run recording, deduplicating per
// failure location (the first capture wins; the manager's farm only needs
// one copy of a deterministic failure). Called with a.mu held.
func (a *Aggregator) bufferRecording(nodeID string, raw []byte) error {
	if a.quarantined[nodeID] {
		return nil
	}
	rec, err := replay.Unmarshal(raw)
	if err != nil {
		return err
	}
	pc, ok := rec.FailurePC()
	if !ok {
		return nil // only failing runs are worth upstream bytes
	}
	if a.conf.VetReports {
		// The edge runs every static recording check (replays are the
		// manager's): a recording of some other binary, one claiming an
		// out-of-range failure, or one with an implausible step budget
		// never travels upstream.
		if checkRecordingStatic(a.conf.Image, a.imgWire, rec, pc) != "" {
			a.quarantineLocked(nodeID)
			return nil
		}
	}
	if _, dup := a.recRaw[pc]; dup {
		return nil
	}
	a.recRaw[pc] = raw
	a.recFrom[pc] = nodeID
	return nil
}

// quarantineLocked records an edge verdict: the node's traffic is dropped
// here from now on, and the manager learns of the verdict at the next
// flush. Called with a.mu held.
func (a *Aggregator) quarantineLocked(nodeID string) {
	if a.quarantined[nodeID] {
		return
	}
	a.quarantined[nodeID] = true
	a.newlyQuar = append(a.newlyQuar, nodeID)
}

// maybeFlushLocked flushes when the report buffer has reached the
// configured size. Called with a.mu held.
func (a *Aggregator) maybeFlushLocked() error {
	if a.conf.FlushEvery > 0 && len(a.reports) >= a.conf.FlushEvery {
		return a.flushLocked()
	}
	return nil
}

// Flush compacts everything buffered since the last flush into one
// upstream MsgBatch — the region's reports in arrival order, its learning
// uploads pre-merged into a single database, its recordings deduplicated
// per failure location, and any edge quarantine verdicts — and refreshes
// the per-member directive cache from the manager's DirectivesSet reply.
// A flush with nothing buffered still runs: it registers new members and
// pulls fresh directives (the region's heartbeat).
func (a *Aggregator) Flush() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flushLocked()
}

// flushLocked is Flush's body. Called with a.mu held.
func (a *Aggregator) flushLocked() error {
	if a.closed {
		return fmt.Errorf("community: aggregator %s is closed", a.conf.ID)
	}
	b := Batch{NodeID: a.conf.ID, Aggregated: true}
	for id := range a.nodes {
		b.NodeIDs = append(b.NodeIDs, id)
	}
	sort.Strings(b.NodeIDs)
	b.Reports = a.reports
	var pcs []uint32
	for pc := range a.recRaw {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		b.Recordings = append(b.Recordings, a.recRaw[pc])
		b.RecordingFrom = append(b.RecordingFrom, a.recFrom[pc])
	}
	if a.learnCount > 0 {
		raw, err := a.learn.Marshal()
		if err != nil {
			return err
		}
		b.LearnDBs = [][]byte{raw}
	}
	b.Quarantined = a.newlyQuar

	env, err := NewEnvelope(MsgBatch, b)
	if err != nil {
		return err
	}
	if err := a.conf.Upstream.Send(env); err != nil {
		return err
	}
	a.upstream++
	reply, err := a.conf.Upstream.Recv()
	if err != nil {
		return err
	}
	if reply.Kind != MsgDirectivesSet {
		return fmt.Errorf("community: aggregator %s: unexpected reply %v", a.conf.ID, reply.Kind)
	}
	var set DirectivesSet
	if err := decodePayload(reply.Payload, &set); err != nil {
		return err
	}
	a.seq = set.Seq
	for id, d := range set.ByNode {
		a.dirs[id] = d
	}

	a.reports = nil
	a.learn = nil
	a.learnCount = 0
	a.recRaw = make(map[uint32][]byte)
	a.recFrom = make(map[uint32]string)
	a.newlyQuar = nil
	a.flushes++
	return nil
}

// UpstreamEnvelopes returns how many envelopes this aggregator has sent to
// the manager — the count the hierarchy exists to keep small.
func (a *Aggregator) UpstreamEnvelopes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.upstream
}

// Flushes returns how many flushes have completed.
func (a *Aggregator) Flushes() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.flushes
}

// Members returns the sorted IDs of every member node seen.
func (a *Aggregator) Members() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.nodes))
	for id := range a.nodes {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// QuarantinedNodes returns the sorted IDs of members quarantined at this
// edge.
func (a *Aggregator) QuarantinedNodes() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.quarantined))
	for id := range a.quarantined {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Close simulates the aggregator failing: the upstream connection and
// every member connection are torn down, and all buffered (unflushed)
// state is lost. Members detect the dead connection and fail over to a
// sibling aggregator with Node.Attach; nothing they lose is
// unrecoverable, because all durable community state lives at the manager
// keyed by node ID.
func (a *Aggregator) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	conns := make([]Conn, 0, len(a.conns))
	for c := range a.conns {
		conns = append(conns, c)
	}
	a.conns = make(map[Conn]bool)
	a.mu.Unlock()
	_ = a.conf.Upstream.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	return nil
}
