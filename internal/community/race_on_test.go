//go:build race

package community

// raceDetectorEnabled reports whether this test binary was built with the
// race detector; the 1,000-node soak is skipped there (it is sequential
// and deterministic — the smaller soaks provide the race coverage — and
// the detector's ~10x slowdown would dominate the suite).
const raceDetectorEnabled = true
