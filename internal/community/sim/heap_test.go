package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// popAll drains the heap, asserting each popped event is no later than
// its successor under the (time, seq) order.
func popAll(t *testing.T, h *eventHeap) []*event {
	t.Helper()
	var out []*event
	for {
		e := h.Pop()
		if e == nil {
			break
		}
		if n := len(out); n > 0 && e.before(out[n-1]) {
			t.Fatalf("pop %d (at=%d seq=%d) fired before its predecessor (at=%d seq=%d)",
				n, e.at, e.seq, out[n-1].at, out[n-1].seq)
		}
		out = append(out, e)
	}
	return out
}

// TestEventHeapProperty is the heap's randomized property test: push a
// few thousand events with heavily colliding timestamps and verify the
// pop sequence against a plain sort oracle — events fire in (time, seq)
// order, so same-time events fire exactly in schedule order.
func TestEventHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(3000)
		span := 1 + rng.Intn(16) // few distinct times → many (at) ties
		var h eventHeap
		oracle := make([]*event, 0, n)
		for seq := 1; seq <= n; seq++ {
			e := &event{at: int64(rng.Intn(span)), seq: uint64(seq)}
			h.Push(e)
			oracle = append(oracle, e)
		}
		if h.Len() != n {
			t.Fatalf("trial %d: Len = %d after %d pushes", trial, h.Len(), n)
		}
		sort.Slice(oracle, func(i, j int) bool { return oracle[i].before(oracle[j]) })
		got := popAll(t, &h)
		for i := range oracle {
			if got[i] != oracle[i] {
				t.Fatalf("trial %d: pop %d = (at=%d seq=%d), oracle says (at=%d seq=%d)",
					trial, i, got[i].at, got[i].seq, oracle[i].at, oracle[i].seq)
			}
		}
		if h.Pop() != nil {
			t.Fatalf("trial %d: pop from drained heap returned an event", trial)
		}
	}
}

// TestEventHeapInterleaved mixes pushes and pops the way the scheduler
// does (events scheduled while earlier ones fire): every pop must return
// the minimum of everything still pending.
func TestEventHeapInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	var h eventHeap
	pending := map[*event]bool{}
	var seq uint64
	var now int64
	for op := 0; op < 10000; op++ {
		if h.Len() == 0 || rng.Intn(3) != 0 {
			seq++
			// Schedule relative to the popped clock, like scheduler.schedule
			// clamping to now — the heap itself must not care.
			e := &event{at: now + int64(rng.Intn(5)), seq: seq}
			h.Push(e)
			pending[e] = true
			continue
		}
		var min *event
		for e := range pending {
			if min == nil || e.before(min) {
				min = e
			}
		}
		got := h.Pop()
		if got != min {
			t.Fatalf("op %d: popped (at=%d seq=%d), pending minimum is (at=%d seq=%d)",
				op, got.at, got.seq, min.at, min.seq)
		}
		delete(pending, got)
		now = got.at
	}
	got := popAll(t, &h)
	if len(got) != len(pending) {
		t.Fatalf("drained %d events, %d were pending", len(got), len(pending))
	}
}
