package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/correlate"
)

// Report renders the maintainer-facing defect report the paper describes
// in §1: the failure location, the correlated invariants, the enforcement
// strategy of each candidate repair patch, and each patch's observed
// effectiveness. The intent is to help maintainers "more quickly
// understand and eliminate the corresponding defect" while the automatic
// patch keeps the application in service.
func (c *FailureCase) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Failure %s\n", c.ID)
	fmt.Fprintf(&b, "  location: %#x\n", c.PC)
	fmt.Fprintf(&b, "  status:   %s", c.State)
	if c.Current != nil {
		fmt.Fprintf(&b, " (deployed: %s)", c.Current.Repair.ID())
	}
	b.WriteString("\n")
	if len(c.Stack) > 0 {
		fmt.Fprintf(&b, "  call stack (return sites, innermost first):")
		for _, ret := range c.Stack {
			fmt.Fprintf(&b, " %#x", ret)
		}
		b.WriteString("\n")
	}

	if len(c.Correlations) > 0 {
		b.WriteString("  correlated invariants:\n")
		ids := make([]string, 0, len(c.Correlations))
		for id := range c.Correlations {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			corr := c.Correlations[id]
			if corr < correlate.SlightlyCorrelated {
				continue
			}
			inv := findInvariant(c.Candidates, id)
			fmt.Fprintf(&b, "    [%-10s] %s\n", corr, inv)
		}
	}

	if c.Evaluator != nil && c.Evaluator.Len() > 0 {
		b.WriteString("  candidate repairs (strategy, successes, failures):\n")
		for _, e := range c.Evaluator.Entries() {
			marker := " "
			if c.Current != nil && e == c.Current {
				marker = "*"
			}
			fmt.Fprintf(&b, "   %s %-56s s=%d f=%d\n", marker, e.Repair.ID(), e.Successes, e.Failures)
		}
	}
	fmt.Fprintf(&b, "  checks executed: %d (%d violations); unsuccessful repair runs: %d\n",
		c.Metrics.CheckExecs, c.Metrics.CheckViolations, c.Metrics.Unsuccessful)
	return b.String()
}

func findInvariant(cands []correlate.Candidate, id string) string {
	for _, c := range cands {
		if c.Inv.ID() == id {
			return c.Inv.String()
		}
	}
	return id
}
