// Package redteam reproduces the Red Team exercise of §4: the ten exploit
// builders (one per targeted defect, plus variants), the Blue Team's
// twelve-page learning corpus and its §4.3.2 expansion, and the 57
// legitimate evaluation pages used for repair-quality (autoimmune) and
// false-positive evaluation.
package redteam

import "encoding/binary"

// PageBuilder assembles one page body element by element.
type PageBuilder struct {
	body []byte
}

// NewPage returns an empty page.
func NewPage() *PageBuilder { return &PageBuilder{} }

// Len returns the current body length.
func (p *PageBuilder) Len() int { return len(p.body) }

// Raw appends raw body bytes (used by exploits to plant payloads).
func (p *PageBuilder) Raw(b []byte) *PageBuilder {
	p.body = append(p.body, b...)
	return p
}

// PatchWord overwrites 4 body bytes at off with a little-endian word
// (exploits use this to plant pointers at computed offsets).
func (p *PageBuilder) PatchWord(off int, v uint32) *PageBuilder {
	binary.LittleEndian.PutUint32(p.body[off:], v)
	return p
}

// Text appends a TEXT element.
func (p *PageBuilder) Text(s string) *PageBuilder {
	p.body = append(p.body, 0x01, byte(len(s)))
	p.body = append(p.body, s...)
	return p
}

// TextBytes appends a TEXT element with raw payload (an exploit vehicle:
// the renderer copies it harmlessly, but the bytes stay in the page buffer
// at known offsets).
func (p *PageBuilder) TextBytes(b []byte) *PageBuilder {
	p.body = append(p.body, 0x01, byte(len(b)))
	p.body = append(p.body, b...)
	return p
}

// Gif appends a GIF element.
func (p *PageBuilder) Gif(w, h byte, extOff int8, ext [4]byte) *PageBuilder {
	p.body = append(p.body, 0x02, w, h, byte(extOff))
	p.body = append(p.body, ext[:]...)
	return p
}

// script ops (must match internal/webapp/script.go).
const (
	opCreate    = 0
	opSetProp   = 1
	opInvoke290 = 2
	opInvoke295 = 3
	opGCFree    = 4
	opMakeStr   = 5
	opInvoke312 = 6
	opFreeClr   = 7
	opFresh     = 8
	opInvoke269 = 9
	opInvoke320 = 10
)

// Object types (must match internal/webapp/script.go).
const (
	TypeDoc  = 0
	TypeNode = 1
	TypeList = 2
)

func (p *PageBuilder) script(op, idx, arg3 byte, rest ...byte) *PageBuilder {
	p.body = append(p.body, 0x03, op, idx, arg3)
	p.body = append(p.body, rest...)
	return p
}

// Create appends a script CREATE element.
func (p *PageBuilder) Create(idx, typ byte) *PageBuilder {
	return p.script(opCreate, idx, typ)
}

// SetProp appends a script SETPROP element (the unchecked property write).
func (p *PageBuilder) SetProp(idx, field byte, val uint32) *PageBuilder {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], val)
	return p.script(opSetProp, idx, field, w[:]...)
}

// Invoke290 appends a dispatch through site_290162.
func (p *PageBuilder) Invoke290(idx byte) *PageBuilder { return p.script(opInvoke290, idx, 0) }

// Invoke295 appends a dispatch through site_295854.
func (p *PageBuilder) Invoke295(idx byte) *PageBuilder { return p.script(opInvoke295, idx, 0) }

// GCFree appends the erroneous free (slot left dangling).
func (p *PageBuilder) GCFree(idx byte) *PageBuilder { return p.script(opGCFree, idx, 0) }

// MakeStr appends a 16-byte string allocation filled with payload.
func (p *PageBuilder) MakeStr(idx byte, payload [16]byte) *PageBuilder {
	return p.script(opMakeStr, idx, 0, payload[:]...)
}

// Invoke312 appends a dispatch through site_312278.
func (p *PageBuilder) Invoke312(idx byte) *PageBuilder { return p.script(opInvoke312, idx, 0) }

// FreeClr appends the correct free (slot cleared).
func (p *PageBuilder) FreeClr(idx byte) *PageBuilder { return p.script(opFreeClr, idx, 0) }

// Fresh appends the uninitialized allocation (defect 269095/320182).
func (p *PageBuilder) Fresh(idx byte) *PageBuilder { return p.script(opFresh, idx, 0) }

// Invoke269 appends a dispatch through site_269095.
func (p *PageBuilder) Invoke269(idx byte) *PageBuilder { return p.script(opInvoke269, idx, 0) }

// Invoke320 appends a dispatch through site_320182.
func (p *PageBuilder) Invoke320(idx byte) *PageBuilder { return p.script(opInvoke320, idx, 0) }

// Host appends a HOST element.
func (p *PageBuilder) Host(prio int8, pads [6]byte, name []byte) *PageBuilder {
	p.body = append(p.body, 0x04, byte(len(name)), byte(prio))
	p.body = append(p.body, pads[:]...)
	p.body = append(p.body, name...)
	return p
}

// Uni appends a UNI element. data length must be 2*count.
func (p *PageBuilder) Uni(count byte, grow uint32, data []byte) *PageBuilder {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], grow)
	p.body = append(p.body, 0x05, count)
	p.body = append(p.body, w[:]...)
	p.body = append(p.body, data...)
	return p
}

// Str appends a STR element with its fixed 9 data bytes.
func (p *PageBuilder) Str(total, trailer byte, data [9]byte) *PageBuilder {
	p.body = append(p.body, 0x06, total, trailer)
	p.body = append(p.body, data[:]...)
	return p
}

// Arr appends an ARR element for clone 0 (a), 1 (b) or 2 (c).
func (p *PageBuilder) Arr(clone int, idx int8) *PageBuilder {
	p.body = append(p.body, byte(0x07+clone), byte(idx))
	return p
}

// Scale appends a SCALE element (divisor = bias - 8; bias 8 is the
// div-zero attack).
func (p *PageBuilder) Scale(val, bias byte) *PageBuilder {
	p.body = append(p.body, 0x0A, val, bias)
	return p
}

// Walk appends a WALK element (cnt aligned word reads at the given byte
// stride; a stride off the word grid is the unaligned attack).
func (p *PageBuilder) Walk(cnt, stride byte) *PageBuilder {
	p.body = append(p.body, 0x0B, cnt, stride)
	return p
}

// Loop appends a LOOP element (stride = step - 16; step 16 is the
// non-terminating-loop attack).
func (p *PageBuilder) Loop(count, step byte) *PageBuilder {
	p.body = append(p.body, 0x0C, count, step)
	return p
}

// Build frames the body with its little-endian length prefix.
func (p *PageBuilder) Build() []byte {
	out := make([]byte, 2+len(p.body))
	binary.LittleEndian.PutUint16(out, uint16(len(p.body)))
	copy(out[2:], p.body)
	return out
}

// Input concatenates pages into one application input (one browser
// session navigating the pages in order).
func Input(pages ...[]byte) []byte {
	var out []byte
	for _, pg := range pages {
		out = append(out, pg...)
	}
	return out
}

// bytesOfLen builds a deterministic filler of n bytes in [16, 165],
// a range that excludes the soft-hyphen byte (0xAD) and the canary byte
// (0xFD) so fillers never accidentally trigger a defect.
func bytesOfLen(n, seed int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(16 + (seed*31+i*7)%150)
	}
	return out
}
