// Command attacklog narrates one exploit campaign presentation by
// presentation: outcomes, failure sites, case states, candidate
// invariants, correlations, and the score of every candidate repair. It is
// the debugging lens behind the Table 1/Table 3 numbers.
//
//	attacklog 290162
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/redteam"
)

func main() {
	id := os.Args[1]
	scope := 1
	expanded := false
	var ex redteam.Exploit
	for _, e := range redteam.Exploits() {
		if e.Bugzilla == id {
			ex = e
			scope = e.NeedsStackScope
			expanded = e.NeedsExpandedCorpus
		}
	}
	setup, err := redteam.NewSetup(expanded)
	if err != nil {
		panic(err)
	}
	cv, err := setup.ClearView(scope)
	if err != nil {
		panic(err)
	}
	label := func(pc uint32) string {
		var best string
		var bestAddr uint32
		for name, addr := range setup.App.Labels {
			if addr <= pc && addr > bestAddr {
				bestAddr, best = addr, name
			}
		}
		return fmt.Sprintf("%s+%d", best, pc-bestAddr)
	}
	for i := 1; i <= 16; i++ {
		res := cv.Execute(redteam.AttackInput(setup.App, ex, 0))
		fmt.Printf("pres %2d: %v exit=%d", i, res.Outcome, res.ExitCode)
		if res.Failure != nil {
			fmt.Printf(" at %s (%s)", label(res.Failure.PC), res.Failure.Monitor)
		}
		if res.Crash != nil {
			fmt.Printf(" crash at %s: %s", label(res.Crash.PC), res.Crash.Reason)
		}
		fmt.Println()
		for _, fc := range cv.Cases() {
			fmt.Printf("   case %s state=%v cands=%d repairs=%d current=%s unsucc=%d\n",
				label(fc.PC), fc.State, fc.Metrics.CandidateCount, fc.Metrics.RepairCount,
				fc.CurrentRepairID(), fc.Metrics.Unsuccessful)
			if fc.State == core.StateEvaluating || (fc.State == core.StatePatched && i < 20) {
				for _, e := range fc.Evaluator.Entries() {
					fmt.Printf("      repair %-60s s=%d f=%d\n", e.Repair.ID(), e.Successes, e.Failures)
				}
			}
			if i == 1 {
				for _, c := range fc.Candidates {
					fmt.Printf("      cand d%d %-60s\n", c.Depth, c.Inv)
				}
			}
			if fc.Correlations != nil {
				for id, c := range fc.Correlations {
					fmt.Printf("      corr %-60s %v\n", id, c)
				}
			}
		}
		if res.Outcome == 0 && res.ExitCode == 0 { // normal exit
			break
		}
	}
}
