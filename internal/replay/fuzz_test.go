package replay_test

import (
	"bytes"
	"testing"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/replay"
)

// seedRecording builds a tiny real recording for the fuzz seed corpus: a
// program that echoes one input byte and exits.
func seedRecording(tb testing.TB) []byte {
	a := asm.New(0x1000)
	a.Label("main")
	a.MovRI(isa.EAX, 0)
	a.Sys(isa.SysExit)
	code, labels, err := a.Assemble()
	if err != nil {
		tb.Fatal(err)
	}
	img := &image.Image{Base: 0x1000, Entry: labels["main"], Code: code}
	rec, _, err := replay.Record("seed", img, []byte{1, 2, 3}, nil, replay.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	raw, err := rec.Marshal()
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzRecordingUnmarshal: the recording wire format crosses the community
// trust boundary (nodes upload recordings to the manager), so arbitrary
// bytes must never panic the decoder — and anything that does decode must
// re-marshal and decode again to the same observable recording.
func FuzzRecordingUnmarshal(f *testing.F) {
	raw := seedRecording(f)
	f.Add(raw)
	f.Add(raw[: len(raw)/2 : len(raw)/2])                // truncated
	f.Add(append(append([]byte(nil), raw[:8]...), 0xFF)) // corrupted early (fresh array: must not alias raw)
	f.Add([]byte{})                                      // empty
	f.Add([]byte("not a gob at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := replay.Unmarshal(data)
		if err != nil {
			return // rejection is the expected path for garbage
		}
		out, err := rec.Marshal()
		if err != nil {
			t.Fatalf("decoded recording failed to re-marshal: %v", err)
		}
		again, err := replay.Unmarshal(out)
		if err != nil {
			t.Fatalf("re-marshaled recording failed to decode: %v", err)
		}
		if again.ID != rec.ID || again.Steps != rec.Steps || again.Outcome != rec.Outcome {
			t.Fatalf("round trip changed the recording: %+v vs %+v", rec, again)
		}
		if !bytes.Equal(again.Input, rec.Input) {
			t.Fatal("round trip changed the recorded input")
		}
		// The embedded image may be arbitrary bytes; decoding it must not
		// panic (errors are fine).
		_, _ = rec.DecodeImage()
	})
}
