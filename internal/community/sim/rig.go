package sim

import (
	"fmt"

	"repro/internal/community"
	"repro/internal/core"
	"repro/internal/daikon"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/vm"
)

// simRig is the assembled simulated community: the same tiers the live
// soakRig builds — one root (single Manager or replicated RootGroup),
// an optional aggregator tier, the member population — wired over
// loopback connections and driven by the scheduler instead of per-node
// goroutines. Every ordering decision (setup order, churn order, member
// turn order, flush order, convergence sync order, chaos stream
// numbering) replicates RunSoak's serial execution exactly; that is the
// whole equivalence argument.
type simRig struct {
	conf    community.SoakConfig
	sched   *scheduler
	mgr     *community.Manager
	root    *community.RootGroup
	aggs    []*community.Aggregator
	aggDead []bool
	members []*simMember
	report  *Report
	defects []community.SoakDefect
	tr      *obs.Tracer
	reg     *obs.Registry
	retry   *community.RetryPolicy
	memo    *execMemo

	crashCursor int
	joinSeq     int
	connSeq     int64 // chaos stream numbers; same dial order as RunSoak

	// rootConns tracks live loopbacks into the root tier. A live
	// FailLeader severs its tracked Serve connections; loopbacks have no
	// Serve loop, so the rig severs these itself at the same point.
	rootConns []*loopConn

	cTurns      *obs.Counter
	cDetections *obs.Counter
}

// rootMgr is the manager accounting and convergence read: the group's
// current leader, or the single manager.
func (r *simRig) rootMgr() *community.Manager {
	if r.root != nil {
		return r.root.Leader()
	}
	return r.mgr
}

// rootHandler is the root tier's synchronous handler. The RootGroup
// resolves its leader per envelope, so the same handler value keeps
// working across a failover.
func (r *simRig) rootHandler() handler {
	if r.root != nil {
		return r.root.HandleEnvelope
	}
	return r.mgr.HandleEnvelope
}

// wrap injects the chaos schedule into one client-side connection (a
// no-op without Chaos), consuming stream numbers in the same order
// RunSoak's dials do — the chaos arm's bit-equivalence rides on it.
func (r *simRig) wrap(c community.Conn) community.Conn {
	if r.conf.Chaos == nil {
		return c
	}
	r.connSeq++
	fc, err := community.NewFaultConn(c, r.conf.Chaos, r.connSeq, r.reg)
	if err != nil {
		return c // config was validated up front; unreachable
	}
	return fc
}

// trackRoot registers a root-tier loopback for failover severing.
func (r *simRig) trackRoot(lc *loopConn) {
	lc.onClose = r.untrackRoot
	r.rootConns = append(r.rootConns, lc)
}

func (r *simRig) untrackRoot(c *loopConn) {
	for i, rc := range r.rootConns {
		if rc == c {
			r.rootConns = append(r.rootConns[:i], r.rootConns[i+1:]...)
			return
		}
	}
}

// severRoot closes every live root-tier loopback — the failover's
// severed connections. Clients discover the dead wire on their next
// operation and re-dial onto the promoted leader, exactly as the live
// retry path does.
func (r *simRig) severRoot() {
	conns := append([]*loopConn(nil), r.rootConns...)
	for _, c := range conns {
		c.close()
	}
}

// dialRoot opens a fresh loopback to the root tier: the initial
// aggregator upstream dial and the Redial path after a root failover.
func (r *simRig) dialRoot() (community.Conn, error) {
	lc := &loopConn{h: r.rootHandler()}
	r.trackRoot(lc)
	return r.wrap(lc), nil
}

// attach connects (or re-connects) a member to aggregator agg, or to
// the root when agg < 0.
func (r *simRig) attach(m *simMember, agg int) error {
	lc := &loopConn{}
	if agg >= 0 {
		lc.h = r.aggs[agg].HandleEnvelope
	} else {
		lc.h = r.rootHandler()
		r.trackRoot(lc)
	}
	m.agg = agg
	return m.n.Attach(r.wrap(lc))
}

// redialMember is a member's retry-path redial, failing over to the
// next alive aggregator when its home has died (soakRig.redialMember's
// mirror).
func (r *simRig) redialMember(m *simMember) (community.Conn, error) {
	agg := m.agg
	if agg >= 0 && (agg >= len(r.aggs) || r.aggDead[agg]) {
		agg = r.nextAliveAgg(agg)
		m.agg = agg
	}
	lc := &loopConn{}
	if agg >= 0 {
		lc.h = r.aggs[agg].HandleEnvelope
	} else {
		lc.h = r.rootHandler()
		r.trackRoot(lc)
	}
	return r.wrap(lc), nil
}

// enlist arms a member's resilience when the campaign runs a
// fault-tolerant shape.
func (r *simRig) enlist(m *simMember) {
	m.resilient = r.retry != nil
	if r.retry == nil {
		return
	}
	m.n.EnableResilience(r.retry, func() (community.Conn, error) { return r.redialMember(m) }, r.reg)
}

// nextAliveAgg picks the aggregator a re-attaching member fails over
// to; -1 in flat topology.
func (r *simRig) nextAliveAgg(after int) int {
	if len(r.aggs) == 0 {
		return -1
	}
	for i := 1; i <= len(r.aggs); i++ {
		cand := (after + i) % len(r.aggs)
		if !r.aggDead[cand] {
			return cand
		}
	}
	return -1
}

// scheduleRound enqueues round round's opening event. Churn changes the
// membership, so the round's member turns, flushes, and convergence
// check are scheduled from inside the churn event, once the membership
// is final.
func (r *simRig) scheduleRound(round int) {
	r.sched.schedule(r.sched.now+1, "churn", func() error { return r.roundEvents(round) })
}

// roundEvents applies churn and lays out the round: one turn-opening
// event per alive member at distinct times (in member order — time
// dominates the heap order, so member i's whole turn chain fires before
// member i+1's first event, replicating the live serial loop), then the
// aggregator flushes, then the convergence check, which decides whether
// a next round is scheduled.
func (r *simRig) roundEvents(round int) error {
	if err := r.churnStep(round); err != nil {
		return err
	}

	inputs := make([][]byte, 0, len(r.conf.Attacks)+1)
	for _, atk := range r.conf.Attacks {
		inputs = append(inputs, atk.Input)
	}
	if len(r.conf.Benign) > 0 {
		inputs = append(inputs, r.conf.Benign[(round-1)%len(r.conf.Benign)])
	}

	base := r.sched.now
	slot := int64(0)
	for _, m := range r.members {
		if m.crashed {
			continue
		}
		m := m
		slot++
		r.sched.schedule(base+slot, m.beginState().kind(), func() error {
			return r.beginTurn(m, inputs)
		})
	}
	flushBase := base + slot + 1
	for i, a := range r.aggs {
		// Aliveness is decided at schedule time, like the live flush
		// loop's skip — nothing re-kills an aggregator mid-round.
		if r.aggDead[i] {
			continue
		}
		a := a
		r.sched.schedule(flushBase+int64(i), "flush", func() error { return a.Flush() })
	}
	r.sched.schedule(flushBase+int64(len(r.aggs))+1, "converge", func() error {
		r.report.RoundsRun = round
		all := r.converged(round)
		// A churn campaign runs its whole schedule (convergence must
		// hold under churn, not just be reached); a static one stops at
		// first full agreement. RunSoak's exact stopping rule.
		if (all && r.conf.Churn == nil) || round >= r.conf.Rounds {
			return nil // campaign over; the heap drains
		}
		r.scheduleRound(round + 1)
		return nil
	})
	return nil
}

// beginTurn resets a member's machine for the round and fires its first
// state.
func (r *simRig) beginTurn(m *simMember, inputs [][]byte) error {
	r.cTurns.Inc()
	m.inputs = inputs
	m.idx = 0
	m.detected = false
	m.raw = nil
	m.rep = community.RunReport{}
	m.batch = community.Batch{NodeID: m.n.ID}
	m.batched = r.conf.Batched
	m.state = m.beginState()
	if m.trace != nil {
		m.trace = m.trace[:0]
	}
	return r.stepMember(m)
}

// stepMember performs the machine's current state and schedules the
// next one at the same virtual time (fresh seq, so the chain stays in
// order yet whole turns of different members never interleave — times
// differ).
func (r *simRig) stepMember(m *simMember) error {
	if m.trace != nil {
		m.trace = append(m.trace, m.state)
	}
	if err := r.perform(m); err != nil {
		return err
	}
	next := m.next()
	m.state = next
	if next == StateIdle {
		return nil
	}
	r.sched.schedule(r.sched.now, next.kind(), func() error { return r.stepMember(m) })
	return nil
}

// perform runs the current state's side effects against the real
// community.
func (r *simRig) perform(m *simMember) error {
	switch m.state {
	case StateSync:
		return m.n.Sync()
	case StateExecute:
		return r.execute(m)
	case StateDetect:
		r.cDetections.Inc()
		return nil
	case StateReport:
		return r.ship(m)
	case StateAdopt:
		// The round trip already folded the reply directives into the
		// node, as it does live; the state exists so adoption is metered
		// as its own event type.
		return nil
	case StateTamper:
		m.tampered = true
		if m.forger {
			return r.sendForgedRecording(m.n, m.advIndex)
		}
		return r.sendSpoofedTraffic(m.n)
	case StateDecoy:
		return r.sendDecoyReport(m.n)
	default: // Idle, Crashed: nothing to do
		return nil
	}
}

// execute runs the member's current input through the execution memo
// and accumulates the turn's outgoing traffic.
func (r *simRig) execute(m *simMember) error {
	_, rep, raw, err := r.memo.run(m.n, m.inputs[m.idx])
	if err != nil {
		return err
	}
	m.detected = rep.Failure != nil
	if m.batched {
		m.batch.Reports = append(m.batch.Reports, rep)
		if raw != nil {
			m.batch.Recordings = append(m.batch.Recordings, raw)
		}
	} else {
		m.rep = rep
		m.raw = raw
	}
	return nil
}

// ship sends the turn's accumulated traffic upstream: the whole batch
// in batched mode (RunBatch's envelope, byte for byte), the current
// input's report and recording otherwise (RunOnce's envelopes).
func (r *simRig) ship(m *simMember) error {
	if m.batched {
		env, err := community.NewEnvelope(community.MsgBatch, m.batch)
		if err != nil {
			return err
		}
		return m.n.RoundTrip(env)
	}
	env, err := community.NewEnvelope(community.MsgRunReport, m.rep)
	if err != nil {
		return err
	}
	if err := m.n.RoundTrip(env); err != nil {
		return err
	}
	if m.raw != nil {
		env, err := community.NewEnvelope(community.MsgRecording, community.RecordingUpload{NodeID: m.n.ID, Recording: m.raw})
		if err != nil {
			return err
		}
		return m.n.RoundTrip(env)
	}
	return nil
}

// churnStep is soakRig.churnStep's mirror: root failover, aggregator
// failover, rejoins, crashes, joins — same order, same counters, same
// naming, so the envelope stream downstream is identical.
func (r *simRig) churnStep(round int) error {
	churn := r.conf.Churn
	if churn == nil || round < 2 {
		return nil
	}

	if churn.RootCrashRound == round && r.root != nil {
		if err := r.root.FailLeader(); err != nil {
			return err
		}
		// FailLeader severed its Serve connections; sever the loopbacks
		// it cannot see.
		r.severRoot()
		r.report.RootFailovers++
	}

	if churn.AggregatorCrashRound == round && len(r.aggs) >= 2 && !r.aggDead[0] {
		_ = r.aggs[0].Close()
		r.aggDead[0] = true
		r.report.AggregatorFailovers++
		for _, m := range r.members {
			if m.agg == 0 && !m.crashed {
				if err := r.attach(m, r.nextAliveAgg(0)); err != nil {
					return err
				}
			}
		}
	}

	for _, m := range r.members {
		if m.crashed {
			if err := r.attach(m, r.nextAliveAgg(m.agg)); err != nil {
				return err
			}
			m.crashed = false
			r.report.Rejoins++
		}
	}

	honestPool := make([]*simMember, 0, len(r.members))
	for _, m := range r.members {
		if !m.adversary && !m.n.RecordFailures && !m.crashed {
			honestPool = append(honestPool, m)
		}
	}
	for i := 0; i < churn.CrashPerRound && len(honestPool) > 1; i++ {
		idx := r.crashCursor % len(honestPool)
		m := honestPool[idx]
		honestPool = append(honestPool[:idx], honestPool[idx+1:]...)
		r.crashCursor++
		_ = m.n.Close()
		m.crashed = true
		r.report.Crashes++
	}

	for i := 0; i < churn.JoinPerRound; i++ {
		m := &simMember{n: community.NewNode(fmt.Sprintf("join%03d", r.joinSeq), r.conf.Image, nil)}
		m.n.Obs = r.tr
		r.enlist(m)
		r.joinSeq++
		agg := -1
		if len(r.aggs) > 0 {
			agg = r.nextAliveAgg(r.joinSeq % len(r.aggs))
		}
		if err := r.attach(m, agg); err != nil {
			return err
		}
		r.members = append(r.members, m)
		r.report.Joins++
	}
	return nil
}

// sendDecoyReport is a tampered adversary's later-round traffic: a
// plausible, well-formed report that must change nothing once the node
// is quarantined.
func (r *simRig) sendDecoyReport(n *community.Node) error {
	rep := community.RunReport{NodeID: n.ID, Seq: n.Directives().Seq, Outcome: uint8(vm.OutcomeExit)}
	env, err := community.NewEnvelope(community.MsgRunReport, rep)
	if err != nil {
		return err
	}
	return n.RoundTrip(env)
}

// sendSpoofedTraffic ships the edge-checkable tampers — a failure
// report and a poisoned learning upload with out-of-range PCs
// (soakRig.sendSpoofedTraffic verbatim).
func (r *simRig) sendSpoofedTraffic(n *community.Node) error {
	img := r.conf.Image
	badPC := img.End() + 0x1000
	rep := community.RunReport{
		NodeID:  n.ID,
		Seq:     n.Directives().Seq,
		Outcome: uint8(vm.OutcomeFailure),
		Failure: &community.FailureInfo{PC: badPC, Monitor: "MemoryFirewall", Kind: "spoofed"},
	}
	env, err := community.NewEnvelope(community.MsgRunReport, rep)
	if err != nil {
		return err
	}
	if err := n.RoundTrip(env); err != nil {
		return err
	}

	poisoned := daikon.NewDB()
	poisoned.Add(&daikon.Invariant{
		Kind:    daikon.KindLowerBound,
		Var:     daikon.VarID{PC: badPC},
		Bound:   -1,
		Samples: 1 << 20,
	})
	raw, err := poisoned.Marshal()
	if err != nil {
		return err
	}
	env, err = community.NewEnvelope(community.MsgLearnUpload, community.LearnUpload{NodeID: n.ID, DB: raw})
	if err != nil {
		return err
	}
	return n.RoundTrip(env)
}

// sendForgedRecording ships the farm-checkable tamper — a healthy run's
// recording relabelled as a failure at a plausible in-range location
// (soakRig.sendForgedRecording verbatim).
func (r *simRig) sendForgedRecording(n *community.Node, advIndex int) error {
	img := r.conf.Image
	input := []byte("forged")
	if len(r.conf.Benign) > 0 {
		input = r.conf.Benign[0]
	}
	rec, _, err := replay.Record(n.ID+"/forged", img, input, nil, replay.Options{})
	if err != nil {
		return err
	}
	claimPC := img.Base + uint32((int(img.Entry-img.Base)+4*advIndex)%len(img.Code))
	rec.Outcome = vm.OutcomeFailure
	rec.ExitCode = 0
	rec.Failure = &vm.Failure{PC: claimPC, Monitor: "MemoryFirewall", Kind: "forged"}
	raw, err := rec.Marshal()
	if err != nil {
		return err
	}
	env, err := community.NewEnvelope(community.MsgRecording, community.RecordingUpload{NodeID: n.ID, Recording: raw})
	if err != nil {
		return err
	}
	return n.RoundTrip(env)
}

// converged is soakRig.converged's serial mirror: sync every eligible
// member in member order, update the convergence table, report whether
// every defect holds full agreement.
func (r *simRig) converged(round int) bool {
	root := r.rootMgr()
	states := root.CaseStates()
	quarantined := root.Quarantined()

	type held struct {
		ids   map[string]string // failureID -> repair ID
		valid bool
	}
	var eligible []*simMember
	for _, m := range r.members {
		if m.crashed || m.adversary {
			continue
		}
		if _, q := quarantined[m.n.ID]; q {
			continue
		}
		eligible = append(eligible, m)
	}
	holdings := make([]held, len(eligible))
	for i, m := range eligible {
		if err := m.n.Sync(); err != nil {
			continue // invalid holding, like the live collect
		}
		h := held{ids: make(map[string]string), valid: true}
		dir := m.n.Directives()
		for j := range dir.Repairs {
			spec := &dir.Repairs[j]
			h.ids[spec.FailureID] = community.RepairSpecID(spec)
		}
		holdings[i] = h
	}

	all := true
	for i := range r.defects {
		d := &r.defects[i]
		if states[d.FailurePC] != core.StatePatched {
			d.Converged = false
			all = false
			continue
		}
		failureID := fmt.Sprintf("fail@%#x", d.FailurePC)
		agree := 0
		var adopted string
		uniform := true
		for _, h := range holdings {
			if !h.valid {
				uniform = false
				continue
			}
			id, ok := h.ids[failureID]
			if !ok {
				uniform = false
				continue
			}
			if adopted == "" {
				adopted = id
			}
			if id == adopted {
				agree++
			} else {
				uniform = false
			}
		}
		d.Agree = agree
		d.Converged = uniform && adopted != "" && agree == len(holdings)
		if d.Converged {
			d.Adopted = adopted
			if d.Rounds == 0 {
				d.Rounds = round
			}
		} else {
			all = false
		}
	}
	return all
}
