package vm

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// Edge is one observed control-flow edge between two basic blocks in the
// code cache, identified by their start addresses. The entry edge of a run
// has From == 0 (no block precedes the entry point).
type Edge struct {
	From uint32
	To   uint32
}

// Coverage accumulates per-basic-block edge coverage for one or more runs.
// The machine records an edge every time the dispatch loop enters a block
// (cache hit or miss alike), so hit counts reflect dynamic block
// transitions, not cache population. Coverage is the feedback signal the
// exploit fuzzer (internal/fuzz) steers by; it is deliberately cheap —
// one map update per executed basic block — and costs nothing when no
// Coverage is attached.
//
// A Coverage value is not safe for concurrent use; attach a fresh one per
// machine and Merge the results.
type Coverage struct {
	edges map[Edge]uint64
}

// NewCoverage returns an empty coverage accumulator.
func NewCoverage() *Coverage {
	return &Coverage{edges: make(map[Edge]uint64)}
}

func (c *Coverage) hit(from, to uint32) {
	c.edges[Edge{From: from, To: to}]++
}

// EdgeCount returns the number of distinct edges observed.
func (c *Coverage) EdgeCount() int { return len(c.edges) }

// Hits returns the hit count of one edge.
func (c *Coverage) Hits(e Edge) uint64 { return c.edges[e] }

// TotalHits returns the sum of all edge hit counts — the number of basic
// blocks dispatched while this coverage was attached.
func (c *Coverage) TotalHits() uint64 {
	var n uint64
	for _, h := range c.edges {
		n += h
	}
	return n
}

// BlockCount returns the number of distinct blocks observed as edge
// destinations (the entry block is always a destination, so this counts
// every executed block).
func (c *Coverage) BlockCount() int {
	seen := make(map[uint32]struct{}, len(c.edges))
	for e := range c.edges {
		seen[e.To] = struct{}{}
	}
	return len(seen)
}

// Edges returns every observed edge in deterministic (From, To) order.
func (c *Coverage) Edges() []Edge {
	out := make([]Edge, 0, len(c.edges))
	for e := range c.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Merge folds other into c and reports how many of other's edges were not
// previously present in c — the "new coverage" signal a fuzzer uses to
// decide whether an input earned a place in the corpus.
func (c *Coverage) Merge(other *Coverage) (novel int) {
	if c.edges == nil {
		c.edges = make(map[Edge]uint64, len(other.edges))
	}
	for e, h := range other.edges {
		if _, ok := c.edges[e]; !ok {
			novel++
		}
		c.edges[e] += h
	}
	return novel
}

// Reset clears all recorded edges, keeping the accumulator attachable.
func (c *Coverage) Reset() {
	c.edges = make(map[Edge]uint64)
}

// Hash returns a deterministic FNV-1a digest over the sorted edge set and
// hit counts — two coverage maps with identical contents hash identically
// regardless of observation order. The fuzzer uses it to assert that a
// seeded campaign reproduces bit-for-bit.
func (c *Coverage) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, e := range c.Edges() {
		word(uint64(e.From))
		word(uint64(e.To))
		word(c.edges[e])
	}
	return h.Sum64()
}
