package community

import (
	"testing"

	"repro/internal/core"
	"repro/internal/daikon"
	"repro/internal/redteam"
	"repro/internal/replay"
	"repro/internal/vm"
	"repro/internal/webapp"
)

// twoAggRig wires a manager behind two aggregators and returns everything
// a churn test needs.
func twoAggRig(t *testing.T, mc ManagerConfig) (*Manager, [2]*Aggregator) {
	t.Helper()
	mc.VetReports = true
	mc.TrustedAggregators = []string{"agg00", "agg01"}
	m, err := NewManager(mc)
	if err != nil {
		t.Fatal(err)
	}
	var aggs [2]*Aggregator
	for i := range aggs {
		upSide, mgrSide := Pipe()
		go func() { _ = m.Serve(mgrSide) }()
		agg, err := NewAggregator(AggregatorConfig{
			ID: []string{"agg00", "agg01"}[i], Image: mc.Image, Upstream: upSide, VetReports: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		aggs[i] = agg
	}
	return m, aggs
}

// attachNode homes a node onto an aggregator over a fresh pipe.
func attachNode(t *testing.T, agg *Aggregator, n *Node) {
	t.Helper()
	nodeSide, aggSide := Pipe()
	go func() { _ = agg.Serve(aggSide) }()
	if err := n.Attach(nodeSide); err != nil {
		t.Fatal(err)
	}
}

// TestNodeCrashReattachKeepsShard extends TestNodeReconnectKeepsShard
// across the hierarchy: a node that crashes mid-presentation and
// re-attaches through a *different* aggregator keeps its learning shard —
// handouts are per-identity at the manager, not per-connection or
// per-region.
func TestNodeCrashReattachKeepsShard(t *testing.T) {
	app := webapp.MustBuild()
	m, aggs := twoAggRig(t, ManagerConfig{Image: app.Image, LearnShards: 4})
	_ = m

	n := NewNode("stable-id", app.Image, nil)
	attachNode(t, aggs[0], n)
	if err := aggs[0].Flush(); err != nil { // registers the node upstream
		t.Fatal(err)
	}
	if err := n.Sync(); err != nil {
		t.Fatal(err)
	}
	lo1, hi1 := n.Directives().LearnLo, n.Directives().LearnHi
	if hi1 == lo1 {
		t.Fatal("node got no learning assignment")
	}

	_ = n.Close() // crash mid-presentation

	attachNode(t, aggs[1], n) // fail over to the sibling region
	if err := aggs[1].Flush(); err != nil {
		t.Fatal(err)
	}
	if err := n.Sync(); err != nil {
		t.Fatal(err)
	}
	if n.Directives().LearnLo != lo1 || n.Directives().LearnHi != hi1 {
		t.Errorf("shard changed across crash + re-attach: [%#x,%#x) vs [%#x,%#x)",
			lo1, hi1, n.Directives().LearnLo, n.Directives().LearnHi)
	}
}

// TestAggregatorCrashFailover: an aggregator dies mid-campaign; its
// members fail over to a sibling and the community still converges on a
// repair the failed-over members end up holding.
func TestAggregatorCrashFailover(t *testing.T) {
	app := webapp.MustBuild()
	m, aggs := twoAggRig(t, redTeamManagerConfig(t, app))

	victim := NewNode("victim", app.Image, nil)
	victim.RecordFailures = true
	peer := NewNode("peer", app.Image, nil)
	attachNode(t, aggs[0], victim)
	attachNode(t, aggs[0], peer)

	ex := exploitByID(t, "290162")
	attack := redteam.AttackInput(app, ex, 0)

	// Round 1 through aggregator 0: detection + recording, flushed.
	if _, err := victim.RunOnce(attack); err != nil {
		t.Fatal(err)
	}
	if err := aggs[0].Flush(); err != nil {
		t.Fatal(err)
	}

	// Aggregator 0 dies. Subsequent member traffic fails…
	_ = aggs[0].Close()
	if err := victim.Sync(); err == nil {
		t.Fatal("sync through a crashed aggregator succeeded")
	}

	// …until the members fail over to the sibling.
	attachNode(t, aggs[1], victim)
	attachNode(t, aggs[1], peer)
	patched := false
	for i := 0; i < 6 && !patched; i++ {
		res, err := victim.RunOnce(attack)
		if err != nil {
			t.Fatal(err)
		}
		if err := aggs[1].Flush(); err != nil {
			t.Fatal(err)
		}
		patched = res.Outcome == vm.OutcomeExit && res.ExitCode == 0
	}
	if !patched {
		t.Fatal("victim never protected after failover")
	}
	if st := m.CaseStates()[app.Labels["site_290162"]]; st != core.StatePatched {
		t.Fatalf("manager case state = %v", st)
	}
	// The peer that failed over with it is protected on first exposure.
	if err := peer.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(peer.Directives().Repairs) == 0 {
		t.Fatal("failed-over peer holds no repair")
	}
	res, err := peer.RunOnce(attack)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != vm.OutcomeExit || res.ExitCode != 0 {
		t.Fatalf("failed-over peer not immune: %+v", res)
	}
}

// TestSpoofedReportQuarantines: a report whose failure PC lies outside
// the code range quarantines the node at the edge and never opens a case
// at the manager; the node's later, well-formed reports stay ignored.
func TestSpoofedReportQuarantines(t *testing.T) {
	app := webapp.MustBuild()
	m, aggs := twoAggRig(t, redTeamManagerConfig(t, app))
	liar := NewNode("liar", app.Image, nil)
	attachNode(t, aggs[0], liar)

	badPC := app.Image.End() + 0x1000
	spoofed, err := NewEnvelope(MsgRunReport, RunReport{
		NodeID:  "liar",
		Outcome: uint8(vm.OutcomeFailure),
		Failure: &FailureInfo{PC: badPC, Monitor: "MemoryFirewall"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := liar.roundTrip(spoofed); err != nil {
		t.Fatal(err)
	}
	if err := aggs[0].Flush(); err != nil {
		t.Fatal(err)
	}
	if got := aggs[0].QuarantinedNodes(); len(got) != 1 || got[0] != "liar" {
		t.Fatalf("edge quarantine = %v, want [liar]", got)
	}
	if _, q := m.Quarantined()["liar"]; !q {
		t.Fatal("edge verdict did not reach the manager")
	}
	if len(m.CaseStates()) != 0 {
		t.Fatalf("spoofed report opened a case: %v", m.CaseStates())
	}

	// A later, perfectly valid failing report from the liar changes
	// nothing — but the same report from an honest node opens the case.
	ex := exploitByID(t, "290162")
	attack := redteam.AttackInput(app, ex, 0)
	if _, err := liar.RunOnce(attack); err != nil {
		t.Fatal(err)
	}
	if err := aggs[0].Flush(); err != nil {
		t.Fatal(err)
	}
	if len(m.CaseStates()) != 0 {
		t.Fatal("a quarantined node's valid report advanced the campaign")
	}

	honest := NewNode("honest", app.Image, nil)
	attachNode(t, aggs[0], honest)
	if _, err := honest.RunOnce(attack); err != nil {
		t.Fatal(err)
	}
	if err := aggs[0].Flush(); err != nil {
		t.Fatal(err)
	}
	if st := m.CaseStates()[app.Labels["site_290162"]]; st != core.StateChecking {
		t.Fatalf("honest report did not open the case: %v", m.CaseStates())
	}
}

// TestPoisonedLearnUploadQuarantines: an invariant database carrying
// out-of-range PCs is dropped at the edge and the uploader quarantined;
// the community database never sees it.
func TestPoisonedLearnUploadQuarantines(t *testing.T) {
	app := webapp.MustBuild()
	m, aggs := twoAggRig(t, ManagerConfig{Image: app.Image})
	liar := NewNode("liar", app.Image, nil)
	attachNode(t, aggs[0], liar)

	poisoned := daikon.NewDB()
	poisoned.Add(&daikon.Invariant{
		Kind: daikon.KindLowerBound,
		Var:  daikon.VarID{PC: app.Image.End() + 64},
	})
	raw, err := poisoned.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnvelope(MsgLearnUpload, LearnUpload{NodeID: "liar", DB: raw})
	if err != nil {
		t.Fatal(err)
	}
	if err := liar.roundTrip(env); err != nil {
		t.Fatal(err)
	}
	if err := aggs[0].Flush(); err != nil {
		t.Fatal(err)
	}
	if m.InvariantCount() != 0 || m.Uploads() != 0 {
		t.Fatalf("poisoned upload reached the community DB: %d invariants, %d uploads",
			m.InvariantCount(), m.Uploads())
	}
	if _, q := m.Quarantined()["liar"]; !q {
		t.Fatal("poisoner not quarantined")
	}
}

// TestForgedRecordingQuarantines: a recording of a healthy run relabelled
// as a failure passes every static check and is only caught by the
// manager's farm vetting — which quarantines the forger and refuses the
// recording.
func TestForgedRecordingQuarantines(t *testing.T) {
	app := webapp.MustBuild()
	mc := redTeamManagerConfig(t, app)
	mc.ReplayWorkers = -1
	m, aggs := twoAggRig(t, mc)
	forger := NewNode("forger", app.Image, nil)
	attachNode(t, aggs[0], forger)

	rec, _, err := replay.Record("forger/clean", app.Image, redteam.EvaluationPages()[0], nil, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec.Outcome = vm.OutcomeFailure
	rec.Failure = &vm.Failure{PC: app.Labels["site_290162"], Monitor: "MemoryFirewall", Kind: "forged"}
	raw, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnvelope(MsgRecording, RecordingUpload{NodeID: "forger", Recording: raw})
	if err != nil {
		t.Fatal(err)
	}
	if err := forger.roundTrip(env); err != nil {
		t.Fatal(err)
	}
	// The forgery passes the edge (static checks see an in-range PC)…
	if got := aggs[0].QuarantinedNodes(); len(got) != 0 {
		t.Fatalf("edge quarantined the forger prematurely: %v", got)
	}
	if err := aggs[0].Flush(); err != nil {
		t.Fatal(err)
	}
	// …and dies at the manager's farm.
	if _, q := m.Quarantined()["forger"]; !q {
		t.Fatal("forger not quarantined by farm vetting")
	}
	if m.RecordingCount() != 0 {
		t.Fatalf("forged recording retained: %d", m.RecordingCount())
	}
}

// TestUntrustedAggregatedBatchRejected: an ordinary member cannot
// impersonate an aggregator — a batch that speaks for other nodes (member
// lists, quarantine verdicts, recording attribution) from a sender
// outside the provisioned tier is a protocol violation: the connection is
// dropped and nothing it claimed is honored.
func TestUntrustedAggregatedBatchRejected(t *testing.T) {
	app := webapp.MustBuild()
	m, _ := twoAggRig(t, ManagerConfig{Image: app.Image})

	for _, b := range []Batch{
		{NodeID: "evil", NodeIDs: []string{"x"}, Quarantined: []string{"honest"}},
		{NodeID: "evil", Quarantined: []string{"honest"}},
		{NodeID: "evil", RecordingFrom: []string{"honest"}},
	} {
		nodeSide, mgrSide := Pipe()
		done := make(chan error, 1)
		go func() { done <- m.Serve(mgrSide) }()
		env, err := NewEnvelope(MsgBatch, b)
		if err != nil {
			t.Fatal(err)
		}
		if err := nodeSide.Send(env); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err == nil {
			t.Fatalf("manager accepted an aggregated batch from untrusted sender: %+v", b)
		}
	}
	if _, q := m.Quarantined()["honest"]; q {
		t.Fatal("an impersonated quarantine verdict was honored")
	}
	// The provisioned aggregators themselves still aggregate fine (the
	// rig's twoAggRig flushes exercise this everywhere else).
}

// TestRecordingAttributionNotTrustedFromNodes: a node cannot frame a peer
// by shipping a bad recording "attributed" to it — attribution travels
// only in trusted aggregated batches, so the framing batch itself is
// rejected, and a bad recording in a node's own batch quarantines the
// sender, never the claimed victim.
func TestRecordingAttributionNotTrustedFromNodes(t *testing.T) {
	app := webapp.MustBuild()
	mc := redTeamManagerConfig(t, app)
	mc.ReplayWorkers = -1
	m, aggs := twoAggRig(t, mc)

	forged, _, err := replay.Record("framer/clean", app.Image, redteam.EvaluationPages()[0], nil, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	forged.Outcome = vm.OutcomeFailure
	forged.Failure = &vm.Failure{PC: app.Image.Entry, Monitor: "MemoryFirewall", Kind: "forged"}
	raw, err := forged.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	framer := NewNode("framer", app.Image, nil)
	attachNode(t, aggs[0], framer)
	env, err := NewEnvelope(MsgBatch, Batch{
		NodeID:     "framer",
		Recordings: [][]byte{raw},
		// No RecordingFrom: a node's own batch attributes to itself. (A
		// batch WITH RecordingFrom is rejected outright — see
		// TestUntrustedAggregatedBatchRejected.)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := framer.roundTrip(env); err != nil {
		t.Fatal(err)
	}
	if err := aggs[0].Flush(); err != nil {
		t.Fatal(err)
	}
	quarantined := m.Quarantined()
	if _, q := quarantined["framer"]; !q {
		// The edge may have caught it instead; either way the framer,
		// not a peer, must carry the verdict.
		if got := aggs[0].QuarantinedNodes(); len(got) != 1 || got[0] != "framer" {
			t.Fatalf("forged recording did not quarantine its sender: mgr=%v edge=%v", quarantined, got)
		}
	}
}

// TestReportAttributionNotTrustedFromNodes mirrors the recording case for
// the report path: a node cannot frame a peer by shipping a run report
// under the peer's NodeID. Report attribution travels only in trusted
// aggregated batches; a report in a member's own batch claiming any other
// identity is dropped at both tiers before the sanity checks can
// quarantine the named peer, and a connection bound to one identity cannot
// switch to another to send the forgery directly.
func TestReportAttributionNotTrustedFromNodes(t *testing.T) {
	app := webapp.MustBuild()
	m, aggs := twoAggRig(t, redTeamManagerConfig(t, app))

	forged := RunReport{
		NodeID:  "victim",
		Outcome: uint8(vm.OutcomeFailure),
		Failure: &FailureInfo{PC: app.Image.End() + 0x1000, Monitor: "MemoryFirewall", Kind: "framed"},
	}

	// Through the aggregator: the framer's own batch carries a report
	// claiming the victim. The edge drops it before its out-of-range PC
	// can quarantine anyone.
	framer := NewNode("framer", app.Image, nil)
	attachNode(t, aggs[0], framer)
	env, err := NewEnvelope(MsgBatch, Batch{NodeID: "framer", Reports: []RunReport{forged}})
	if err != nil {
		t.Fatal(err)
	}
	if err := framer.roundTrip(env); err != nil {
		t.Fatal(err)
	}
	if err := aggs[0].Flush(); err != nil {
		t.Fatal(err)
	}
	if got := aggs[0].QuarantinedNodes(); len(got) != 0 {
		t.Fatalf("edge quarantined someone over a misattributed report: %v", got)
	}
	if got := aggs[0].Rejects(); got != 1 {
		t.Fatalf("edge rejects = %d, want 1", got)
	}

	// Straight at the manager: a member batch (reports only, so not
	// aggregated and not subject to the aggregator allowlist) claiming the
	// victim is dropped and counted, and never opens a case.
	direct := NewNode("framer2", app.Image, nil)
	nodeSide, mgrSide := Pipe()
	go func() { _ = m.Serve(mgrSide) }()
	if err := direct.Attach(nodeSide); err != nil {
		t.Fatal(err)
	}
	env, err = NewEnvelope(MsgBatch, Batch{NodeID: "framer2", Reports: []RunReport{forged}})
	if err != nil {
		t.Fatal(err)
	}
	if err := direct.roundTrip(env); err != nil {
		t.Fatal(err)
	}
	if got := m.Rejects(); got != 1 {
		t.Fatalf("manager rejects = %d, want 1", got)
	}
	if len(m.CaseStates()) != 0 {
		t.Fatalf("misattributed report opened a case: %v", m.CaseStates())
	}

	// A bound connection cannot switch identities to send the forgery as
	// a direct MsgRunReport: the connection is dropped instead.
	env, err = NewEnvelope(MsgRunReport, forged)
	if err != nil {
		t.Fatal(err)
	}
	if err := direct.roundTrip(env); err == nil {
		t.Fatal("identity switch on a bound connection was accepted")
	}

	if _, q := m.Quarantined()["victim"]; q {
		t.Fatal("a framed peer was quarantined")
	}
	if _, q := m.Quarantined()["framer"]; q {
		t.Fatal("framer quarantined: the forged report should have been dropped, not processed")
	}
}

// TestForeignImageRecordingQuarantined: a recording is replayed against
// its own embedded image, so a recording of some OTHER binary could
// "reproduce" any claim — both tiers reject a recording whose image is
// not byte-identical to the protected one, before any replay runs.
func TestForeignImageRecordingQuarantined(t *testing.T) {
	app := webapp.MustBuild()
	mc := redTeamManagerConfig(t, app)
	mc.ReplayWorkers = -1
	m, aggs := twoAggRig(t, mc)
	liar := NewNode("liar", app.Image, nil)
	attachNode(t, aggs[0], liar)

	rec, _, err := replay.Record("liar/foreign", app.Image, redteam.EvaluationPages()[0], nil, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec.Outcome = vm.OutcomeFailure
	rec.Failure = &vm.Failure{PC: app.Labels["site_290162"], Monitor: "MemoryFirewall", Kind: "forged"}
	rec.Image = append([]byte(nil), rec.Image...)
	rec.Image[len(rec.Image)-1] ^= 0xff // a different binary
	raw, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnvelope(MsgRecording, RecordingUpload{NodeID: "liar", Recording: raw})
	if err != nil {
		t.Fatal(err)
	}
	if err := liar.roundTrip(env); err != nil {
		t.Fatal(err)
	}
	if got := aggs[0].QuarantinedNodes(); len(got) != 1 || got[0] != "liar" {
		t.Fatalf("edge accepted a foreign-image recording: %v", got)
	}
	if err := aggs[0].Flush(); err != nil {
		t.Fatal(err)
	}
	if _, q := m.Quarantined()["liar"]; !q {
		t.Fatal("edge verdict did not reach the manager")
	}
	if m.RecordingCount() != 0 {
		t.Fatalf("foreign-image recording retained: %d", m.RecordingCount())
	}
}

// TestAnonymousSenderRejected: a message with no sender ID has no
// accountable place in the protocol (no quarantine could ever stick to
// it), so both tiers drop the connection instead of processing it.
func TestAnonymousSenderRejected(t *testing.T) {
	app := webapp.MustBuild()
	m, aggs := twoAggRig(t, ManagerConfig{Image: app.Image})

	rec, _, err := replay.Record("anon", app.Image, []byte("x"), nil, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec.Outcome = vm.OutcomeFailure
	rec.Failure = &vm.Failure{PC: app.Image.Entry, Monitor: "MemoryFirewall"}
	raw, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	for _, serve := range []func(Conn) error{m.Serve, aggs[0].Serve} {
		for _, env := range []func() (Envelope, error){
			func() (Envelope, error) { return NewEnvelope(MsgHello, Hello{}) },
			func() (Envelope, error) { return NewEnvelope(MsgRunReport, RunReport{}) },
			func() (Envelope, error) {
				return NewEnvelope(MsgRecording, RecordingUpload{Recording: raw})
			},
		} {
			nodeSide, serveSide := Pipe()
			done := make(chan error, 1)
			go func() { done <- serve(serveSide) }()
			e, err := env()
			if err != nil {
				t.Fatal(err)
			}
			if err := nodeSide.Send(e); err != nil {
				t.Fatal(err)
			}
			if err := <-done; err == nil {
				t.Fatalf("anonymous %v accepted", e.Kind)
			}
		}
	}
	if m.RecordingCount() != 0 {
		t.Fatal("anonymous recording retained")
	}
}

// TestQuarantinedSyncHoldsNoAssignment: a quarantined node that keeps
// syncing must not occupy a per-node candidate assignment — its reports
// are ignored, so an assignment would park that candidate unevaluated.
// It still receives plausible directives (the current best, read-only),
// so the reply reveals nothing.
func TestQuarantinedSyncHoldsNoAssignment(t *testing.T) {
	app := webappApp(t)
	conf := setupManagerConfig(app)
	conf.VetReports = true
	m, nodes := startManager(t, conf, []string{"evil", "h1", "h2", "h3"})
	evil := nodes[0]
	ex := exploit269(t)
	attack := redteam.AttackInput(app.App, ex, 0)

	// Quarantine evil, then drive the case to the evaluation phase with
	// the honest members (269095 generates three candidate repairs).
	spoofed, err := NewEnvelope(MsgRunReport, RunReport{
		NodeID:  "evil",
		Outcome: uint8(vm.OutcomeFailure),
		Failure: &FailureInfo{PC: app.App.Image.End() + 4, Monitor: "MemoryFirewall"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := evil.roundTrip(spoofed); err != nil {
		t.Fatal(err)
	}
	if _, q := m.Quarantined()["evil"]; !q {
		t.Fatal("spoofed report did not quarantine")
	}
	for i := 0; i < 3; i++ {
		if _, err := nodes[1+i%3].RunOnce(attack); err != nil {
			t.Fatal(err)
		}
	}
	site := app.App.Labels["site_269095"]
	if st := m.CaseStates()[site]; st != core.StateEvaluating {
		t.Fatalf("state = %v, want evaluating", st)
	}

	// Evil syncs first — it must not consume the best free candidate.
	if err := evil.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(evil.Directives().Repairs) != 1 {
		t.Fatalf("quarantined node got %d repair directives, want a plausible 1", len(evil.Directives().Repairs))
	}
	m.mu.Lock()
	_, occupied := m.cases[site].assigned["evil"]
	m.mu.Unlock()
	if occupied {
		t.Fatal("quarantined node occupies a candidate assignment")
	}
	// All three honest members still receive three DISTINCT candidates.
	ids := map[string]bool{}
	for _, n := range nodes[1:] {
		if err := n.Sync(); err != nil {
			t.Fatal(err)
		}
		reps := n.Directives().Repairs
		if len(reps) != 1 {
			t.Fatalf("%s: %d repair directives", n.ID, len(reps))
		}
		ids[reps[0].Strategy.String()] = true
	}
	if len(ids) != 3 {
		t.Fatalf("honest members got %d distinct candidates, want 3", len(ids))
	}
}

// TestSoakChurnAdversaries is the integration of everything: a
// hierarchical soak under node churn, fresh joins, an aggregator
// failover, and both adversary flavors. The community must quarantine
// exactly the adversaries, adopt repairs driven only by honest nodes, and
// converge for every defect across the surviving population.
func TestSoakChurnAdversaries(t *testing.T) {
	app := webapp.MustBuild()
	conf := soakConfig(t, app, 20, true)
	conf.Aggregators = 4
	conf.Adversaries = 2
	conf.Churn = &ChurnConfig{CrashPerRound: 2, JoinPerRound: 1, AggregatorCrashRound: 3}
	conf.Rounds = 6
	rep, err := RunSoak(conf)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("churn soak did not converge: %+v", rep)
	}
	if len(rep.Quarantined) != 2 || rep.Quarantined[0] != "adv000" || rep.Quarantined[1] != "adv001" {
		t.Fatalf("quarantined = %v, want exactly the adversaries", rep.Quarantined)
	}
	if rep.QuarantinedAdoptions != 0 {
		t.Fatalf("%d adoptions driven by quarantined nodes", rep.QuarantinedAdoptions)
	}
	if rep.Crashes == 0 || rep.Rejoins == 0 || rep.Joins == 0 {
		t.Fatalf("churn did not execute: %+v", rep)
	}
	if rep.AggregatorFailovers != 1 {
		t.Fatalf("aggregator failovers = %d, want 1", rep.AggregatorFailovers)
	}
	for _, d := range rep.Defects {
		if !d.Converged || d.Adopted == "" {
			t.Fatalf("defect %s did not converge: %+v", d.Label, d)
		}
	}
}
