package community

import (
	"testing"

	"repro/internal/redteam"
	"repro/internal/webapp"
)

// soakConfig assembles a small soak over real Red Team scenarios.
func soakConfig(t *testing.T, app *webapp.App, nodes int, batched bool) SoakConfig {
	t.Helper()
	mc := redTeamManagerConfig(t, app)
	var attacks []SoakAttack
	// Two paper defects plus two extended failure classes (FaultGuard's
	// divide-by-zero and HangGuard's runaway loop) so every soak shape —
	// including the 1,000-node churn/adversary headline — carries the new
	// detector families.
	for _, id := range []string{"290162", "312278", "div-zero", "hang-loop"} {
		ex := exploitByID(t, id)
		attacks = append(attacks, SoakAttack{
			Label: ex.Bugzilla, Input: redteam.AttackInput(app, ex, 0),
		})
	}
	return SoakConfig{
		Image:           mc.Image,
		Seed:            mc.Seed,
		BootstrapInputs: mc.BootstrapInputs,
		Nodes:           nodes,
		Rounds:          6,
		Attacks:         attacks,
		Benign:          redteam.EvaluationPages()[:3],
		Batched:         batched,
	}
}

func TestSoakConvergesBatched(t *testing.T) {
	app := webapp.MustBuild()
	rep, err := RunSoak(soakConfig(t, app, 8, true))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("soak did not converge: %+v", rep)
	}
	if rep.Batches == 0 {
		t.Fatal("batched soak sent no MsgBatch envelopes")
	}
	for _, d := range rep.Defects {
		if !d.Converged || d.Adopted == "" {
			t.Fatalf("defect %s did not converge: %+v", d.Label, d)
		}
		if d.Agree != rep.Nodes {
			t.Fatalf("defect %s: %d/%d nodes agree", d.Label, d.Agree, rep.Nodes)
		}
		if d.Rounds < 1 || d.Rounds > rep.RoundsRun {
			t.Fatalf("defect %s converged at impossible round %d", d.Label, d.Rounds)
		}
	}
}

// TestSoakBatchedMatchesPerMessage: both shipping modes must converge
// (which exact surviving candidate is adopted may differ — §3 adopts
// whichever survivor reports first, and message interleaving differs by
// design), each mode must be deterministic run-to-run, and batching must
// cost the manager far fewer envelopes.
func TestSoakBatchedMatchesPerMessage(t *testing.T) {
	app := webapp.MustBuild()
	batched, err := RunSoak(soakConfig(t, app, 6, true))
	if err != nil {
		t.Fatal(err)
	}
	batchedAgain, err := RunSoak(soakConfig(t, app, 6, true))
	if err != nil {
		t.Fatal(err)
	}
	perMsg, err := RunSoak(soakConfig(t, app, 6, false))
	if err != nil {
		t.Fatal(err)
	}
	if !batched.Converged || !perMsg.Converged {
		t.Fatalf("convergence: batched=%v per-message=%v", batched.Converged, perMsg.Converged)
	}
	for i, d := range batched.Defects {
		if d.Adopted != batchedAgain.Defects[i].Adopted || d.Rounds != batchedAgain.Defects[i].Rounds {
			t.Fatalf("identical soaks diverged on defect %s: %+v vs %+v",
				d.Label, d, batchedAgain.Defects[i])
		}
		if perMsg.Defects[i].Adopted == "" {
			t.Fatalf("per-message soak adopted nothing for defect %s", d.Label)
		}
	}
	if batched.Messages >= perMsg.Messages {
		t.Fatalf("batching did not reduce manager messages: %d batched vs %d per-message",
			batched.Messages, perMsg.Messages)
	}
	t.Logf("manager messages: %d batched (%d batches) vs %d per-message",
		batched.Messages, batched.Batches, perMsg.Messages)
}

// TestBatchRecordingDedup: a batch carrying several recordings of the
// same failure location must trigger the replay fast path once, not once
// per recording — the O(batches) manager-cost guarantee.
func TestBatchRecordingDedup(t *testing.T) {
	app := webapp.MustBuild()
	attack := redteam.AttackInput(app, exploitByID(t, "290162"), 0)

	runs := func(inputs [][]byte) int {
		mc := redTeamManagerConfig(t, app)
		mc.ReplayWorkers = -1
		m, nodes := startManager(t, mc, []string{"n0"})
		n := nodes[0]
		n.RecordFailures = true
		if _, err := n.RunBatch(inputs); err != nil {
			t.Fatal(err)
		}
		return m.ReplayRuns()
	}

	single := runs([][]byte{attack})
	double := runs([][]byte{attack, attack})
	if single == 0 {
		t.Fatal("fast path never ran")
	}
	if double != single {
		t.Fatalf("duplicate recordings in one batch cost %d replays, single cost %d", double, single)
	}
}

// TestDirectivesDecodeFresh is the regression test for a wire bug: gob
// merges into existing structures (zero fields are omitted on the wire
// and keep their previous bytes on decode), so decoding every directives
// reply into the same struct let stale check specs from an earlier phase
// corrupt later ones — surfacing as duplicate patch IDs once three or
// more failure cases had cycled through checking. A node must survive a
// long multi-defect per-message sequence with clean directives
// throughout.
func TestDirectivesDecodeFresh(t *testing.T) {
	app := webapp.MustBuild()
	mc := redTeamManagerConfig(t, app)
	mc.ReplayWorkers = -1
	_, nodes := startManager(t, mc, []string{"n0"})
	n := nodes[0]
	n.RecordFailures = true
	for round := 0; round < 2; round++ {
		for _, id := range []string{"269095", "290162", "295854", "312278", "320182"} {
			if _, err := n.RunOnce(redteam.AttackInput(app, exploitByID(t, id), 0)); err != nil {
				t.Fatalf("round %d exploit %s: %v", round+1, id, err)
			}
			seen := map[string]bool{}
			for i := range n.dir.Checks {
				key := n.dir.Checks[i].FailureID + "/" + n.dir.Checks[i].Invariant.ID()
				if seen[key] {
					t.Fatalf("duplicate check directive %s", key)
				}
				seen[key] = true
			}
		}
	}
}

// TestSoakValidation: config errors are reported, not panicked on.
func TestSoakValidation(t *testing.T) {
	if _, err := RunSoak(SoakConfig{}); err == nil {
		t.Fatal("nil image accepted")
	}
	app := webapp.MustBuild()
	if _, err := RunSoak(SoakConfig{Image: app.Image}); err == nil {
		t.Fatal("empty attack set accepted")
	}
	// A benign input is not an attack: the probe must reject it.
	if _, err := RunSoak(SoakConfig{
		Image:   app.Image,
		Attacks: []SoakAttack{{Label: "benign", Input: redteam.EvaluationPages()[0]}},
	}); err == nil {
		t.Fatal("non-failing attack accepted")
	}
}
