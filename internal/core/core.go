// Package core is the ClearView orchestrator: it wires the learning
// database, monitors, correlated invariant identification, repair
// generation, and repair evaluation into the closed loop of Figure 1.
//
// A ClearView instance protects one application. Each call to Execute runs
// the application once on one input (the paper's unit: navigating Firefox
// to a page) under the currently deployed monitors and patches, then
// advances the per-failure-location state machines:
//
//	run 1   a monitor detects a failure at a new location → select
//	        candidate correlated invariants, build checking patches
//	runs 2-3  checking patches observe invariant satisfaction/violation;
//	        after the configured number of failing runs, classify
//	        correlations, drop the checks, generate candidate repairs
//	run 4+  deploy the best-scoring repair; a run in which the failure
//	        recurs (or the application crashes) demotes the repair and the
//	        next best is deployed; a surviving run promotes it to the
//	        adopted patch (evaluation continues for as long as the
//	        application runs)
package core

import (
	"fmt"
	"time"

	"repro/internal/cfg"
	"repro/internal/correlate"
	"repro/internal/daikon"
	"repro/internal/evaluate"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/repair"
	"repro/internal/replay"
	"repro/internal/vm"
)

// Config assembles a ClearView instance.
type Config struct {
	Image      *image.Image
	Invariants *daikon.DB
	CFG        *cfg.DB // shared CFG database; created if nil

	// StackScope is the number of call-stack procedures with candidate
	// invariants to search (§4.3.2); default 1 (the Red Team setting).
	StackScope int
	// CheckRuns is the number of failing runs with checking patches in
	// place before correlations are classified; default 2 (§3.2).
	CheckRuns int
	// Bonus is the never-failed score bonus b (§2.6); default 1.
	Bonus int

	// Ablation knobs (benchmarks only; zero values are the paper's
	// behaviour).
	DisableSameBlockRestriction bool
	ReverseRepairOrder          bool

	// Monitor configuration (§4.2.2: the Red Team ran with the first
	// three; FaultGuard and HangGuard are the extended failure classes).
	MemoryFirewall bool
	HeapGuard      bool
	ShadowStack    bool
	FaultGuard     bool
	HangGuard      bool
	// HangBudget is HangGuard's step budget; 0 selects
	// monitor.DefaultHangBudget. Must stay below MaxSteps.
	HangBudget uint64

	MaxSteps uint64

	// Obs, when set, traces the orchestrator's pipeline stages under the
	// same names the community uses (node.execute, detect, record.seal,
	// vet, farm, correlate, evaluate) so a single-instance run and a
	// community soak read off the same per-stage table. Nil disables
	// tracing; the Metrics struct is always populated either way.
	Obs *obs.Tracer

	// Replay enables the record/replay fast path (internal/replay): every
	// execution is recorded with copy-on-write snapshots, and when a
	// failure is detected the recorded run is immediately replayed —
	// first under the checking patches (compressing the runs-2/3 checking
	// phase), then once per candidate repair on a parallel farm
	// (compressing the run-4+ exploration) — all within the first failing
	// wall-clock presentation. nil keeps the paper's live-only pipeline.
	Replay *ReplayConfig
}

// ReplayConfig tunes the record/replay fast path.
type ReplayConfig struct {
	// Workers bounds concurrent candidate replays; 0 uses GOMAXPROCS.
	Workers int
	// Deadline bounds each candidate replay in wall-clock time; 0 means
	// the machine step budget is the only bound.
	Deadline time.Duration
	// SnapshotInterval is the recording snapshot cadence in steps;
	// 0 selects replay.DefaultSnapshotInterval.
	SnapshotInterval uint64
	// VetRecordings replays each freshly sealed recording once,
	// unmodified, and confirms the recorded outcome reproduces
	// (replay.Farm.Vet) before the fast path trusts it — a determinism
	// self-check of the recording pipeline itself (a tape corrupted by a
	// snapshot bug would otherwise silently mis-rank candidates), at the
	// cost of one extra replay per failing run. A recording that fails
	// the vet is ignored and the live pipeline proceeds as in the paper;
	// Metrics.VetRejects counts such rejections. Cross-trust-boundary
	// vetting of recordings shipped in by community members is the
	// community manager's, via ManagerConfig.VetReports — always
	// stricter (image identity, step-budget clamp, quarantine), never
	// optional there when armed.
	VetRecordings bool
}

// CaseState is the lifecycle of one failure location.
type CaseState uint8

const (
	// StateChecking: invariant-checking patches are deployed.
	StateChecking CaseState = iota
	// StateEvaluating: candidate repairs are being evaluated.
	StateEvaluating
	// StatePatched: a successful repair is adopted (and still evaluated).
	StatePatched
	// StateUnrepaired: every candidate repair failed; the monitors keep
	// blocking the attack but the error is not corrected.
	StateUnrepaired
)

func (s CaseState) String() string {
	switch s {
	case StateChecking:
		return "checking"
	case StateEvaluating:
		return "evaluating"
	case StatePatched:
		return "patched"
	case StateUnrepaired:
		return "unrepaired"
	}
	return fmt.Sprintf("state%d", uint8(s))
}

// Metrics records the per-phase accounting that Table 3 reports.
type Metrics struct {
	DetectRuns      int           // runs to first detection (always 1)
	CheckRuns       int           // failing runs with checks in place
	ChecksBuilt     [5]int        // [one-of, lower-bound, less-than, nonzero, modulus] checked
	CheckExecs      uint64        // total invariant checks executed
	CheckViolations uint64        // total violations observed
	RepairsBuilt    [5]int        // correlated [one-of, lower-bound, less-than, nonzero, modulus]
	CandidateCount  int           // candidate invariants selected
	RepairCount     int           // candidate repairs generated
	Unsuccessful    int           // failed repair-evaluation runs
	ReplayRuns      int           // offline replays (checking + farm)
	ReplayDiscards  int           // candidates discarded by farm verdicts
	VetRejects      int           // recordings rejected by pre-replay vetting
	ReplayTime      time.Duration // wall clock spent in the fast path
	BuildChecks     time.Duration // analog of "Building Invariant Checks"
	BuildRepairs    time.Duration // analog of "Building Repair Patches"
	DetectTime      time.Duration
	CheckRunTime    time.Duration
	RepairRunTime   time.Duration
}

// FailureCase is the state machine for one failure location.
type FailureCase struct {
	ID    string
	PC    uint32
	State CaseState

	Stack        []uint32
	Candidates   []correlate.Candidate
	CheckSet     *correlate.CheckSet
	Correlations map[string]correlate.Correlation
	Repairs      []*repair.Repair
	Evaluator    *evaluate.Evaluator
	Current      *evaluate.Entry // deployed repair, if any

	Metrics Metrics
}

// CurrentRepairID returns the deployed repair's ID, or "".
func (c *FailureCase) CurrentRepairID() string {
	if c.Current == nil {
		return ""
	}
	return c.Current.Repair.ID()
}

// ClearView protects one application instance.
type ClearView struct {
	conf  Config
	cfgdb *cfg.DB
	cases map[uint32]*FailureCase
	order []uint32

	// TotalRuns counts calls to Execute.
	TotalRuns int
	// PatchesGenerated counts every patch object ever built (checks,
	// stages, repairs) — the false-positive evaluation asserts this stays
	// zero under legitimate inputs.
	PatchesGenerated int
	// LastRecording is the most recent failing-run recording, when the
	// replay fast path is enabled — community nodes ship it to the
	// manager, and tools inspect it.
	LastRecording *replay.Recording

	tr *obs.Tracer
}

// New builds a ClearView instance. The invariant database is typically the
// output of a learning phase (internal/trace + internal/daikon) or of the
// community's merged learning.
func New(conf Config) (*ClearView, error) {
	if conf.Image == nil {
		return nil, fmt.Errorf("core: nil image")
	}
	if conf.Invariants == nil {
		return nil, fmt.Errorf("core: nil invariant database")
	}
	if conf.CheckRuns <= 0 {
		conf.CheckRuns = 2
	}
	cv := &ClearView{conf: conf, cases: make(map[uint32]*FailureCase), tr: conf.Obs}
	cv.cfgdb = conf.CFG
	if cv.cfgdb == nil {
		cv.cfgdb = cfg.NewDB(conf.Image)
	}
	return cv, nil
}

// Cases returns all failure cases in creation order.
func (cv *ClearView) Cases() []*FailureCase {
	out := make([]*FailureCase, 0, len(cv.order))
	for _, pc := range cv.order {
		out = append(out, cv.cases[pc])
	}
	return out
}

// Case returns the failure case at a failure location, or nil.
func (cv *ClearView) Case(pc uint32) *FailureCase { return cv.cases[pc] }

// instAt decodes the instruction at pc from the protected image.
func (cv *ClearView) instAt(pc uint32) (isa.Inst, bool) {
	if !cv.conf.Image.Contains(pc) {
		return isa.Inst{}, false
	}
	off := pc - cv.conf.Image.Base
	if off+isa.InstSize > uint32(len(cv.conf.Image.Code)) {
		return isa.Inst{}, false
	}
	in, err := isa.Decode(cv.conf.Image.Code[off : off+isa.InstSize])
	return in, err == nil
}

// Execute runs the application once on input under the current protection
// state and advances every failure case.
func (cv *ClearView) Execute(input []byte) vm.RunResult {
	cv.TotalRuns++

	var plugins []vm.Plugin
	plugins = append(plugins, cfg.NewPlugin(cv.cfgdb))
	var shadow *monitor.ShadowStack
	if cv.conf.ShadowStack {
		shadow = monitor.NewShadowStack()
		plugins = append(plugins, shadow)
	}
	if cv.conf.MemoryFirewall {
		plugins = append(plugins, monitor.NewMemoryFirewall())
	}
	if cv.conf.HeapGuard {
		plugins = append(plugins, monitor.NewHeapGuard())
	}
	if cv.conf.FaultGuard {
		plugins = append(plugins, monitor.NewFaultGuard())
	}
	var hang *monitor.HangGuard
	if cv.conf.HangGuard {
		hang = &monitor.HangGuard{Budget: cv.conf.HangBudget}
		plugins = append(plugins, hang)
	}

	var patches []*vm.Patch
	var deployed []replay.PatchSpec
	for _, pc := range cv.order {
		fc := cv.cases[pc]
		switch fc.State {
		case StateChecking:
			fc.CheckSet.StartRun()
			patches = append(patches, fc.CheckSet.Patches...)
		case StateEvaluating, StatePatched:
			if fc.Current != nil {
				patches = append(patches, fc.Current.Repair.BuildPatches(fc.ID)...)
				if cv.conf.Replay != nil {
					deployed = append(deployed, replay.Spec(fc.ID, fc.Current.Repair))
				}
			}
		}
	}

	cfg := vm.Config{
		Image:    cv.conf.Image,
		Plugins:  plugins,
		Patches:  patches,
		Input:    input,
		MaxSteps: cv.conf.MaxSteps,
	}
	var tape *replay.Tape
	if cv.conf.Replay != nil {
		tape = replay.NewTape(cv.conf.Replay.SnapshotInterval)
		cfg.SnapshotInterval = tape.Interval()
		cfg.SnapshotSink = tape.Sink
	}

	start := time.Now()
	machine, err := vm.New(cfg)
	if err != nil {
		return vm.RunResult{Outcome: vm.OutcomeCrash, Crash: &vm.Crash{Reason: err.Error()}}
	}
	if shadow != nil {
		shadow.Install(machine)
	}
	if hang != nil {
		hang.Install(machine)
	}
	esp := cv.tr.Start("node.execute")
	res := machine.Run()
	esp.Finish()
	elapsed := time.Since(start)

	cv.afterRun(res, elapsed)

	if tape != nil && res.Failure != nil {
		rsp := cv.tr.Start("record.seal")
		rec := tape.Seal(
			fmt.Sprintf("fail@%#x/run%d", res.Failure.PC, cv.TotalRuns),
			cv.conf.Image, input, deployed, cv.monitors(), cv.conf.MaxSteps, res,
		)
		rsp.Finish()
		cv.LastRecording = rec
		cv.replayFastPath(rec, res.Failure.PC)
	}
	return res
}

// monitors reports the configured monitor set in replay form, so
// recordings replay under the same detectors that produced them.
func (cv *ClearView) monitors() replay.Monitors {
	return replay.Monitors{
		MemoryFirewall: cv.conf.MemoryFirewall,
		HeapGuard:      cv.conf.HeapGuard,
		ShadowStack:    cv.conf.ShadowStack,
		FaultGuard:     cv.conf.FaultGuard,
		HangGuard:      cv.conf.HangGuard,
		HangBudget:     cv.conf.HangBudget,
	}
}

func (cv *ClearView) afterRun(res vm.RunResult, elapsed time.Duration) {
	failPC := uint32(0)
	if res.Failure != nil {
		failPC = res.Failure.PC
	}

	var esp *obs.Span
	if len(cv.order) > 0 {
		esp = cv.tr.Start("evaluate")
	}
	defer esp.Finish()

	for _, pc := range cv.order {
		fc := cv.cases[pc]
		switch fc.State {
		case StateChecking:
			detected := res.Failure != nil && failPC == fc.PC
			fc.CheckSet.EndRun(detected)
			if detected {
				fc.Metrics.CheckRuns++
				fc.Metrics.CheckRunTime += elapsed
			}
			if fc.CheckSet.DetectedRuns() >= cv.conf.CheckRuns {
				cv.finishChecking(fc)
			}
		case StateEvaluating, StatePatched:
			if fc.Current == nil {
				break
			}
			fc.Metrics.RepairRunTime += elapsed
			repairID := fc.Current.Repair.ID()
			switch {
			case res.Failure != nil && failPC == fc.PC:
				// The failure recurred with the repair in place.
				fc.Evaluator.RecordFailure(repairID)
				fc.Metrics.Unsuccessful++
				cv.redeploy(fc)
			case res.Outcome == vm.OutcomeCrash,
				res.Outcome == vm.OutcomeExit && res.ExitCode != 0:
				// A crash with the repair in place counts against it
				// (§2.6: failed if the application crashes after repair).
				// An abnormal exit (the application's own exception
				// handler bailing out with a nonzero status) is the
				// observable equivalent of a crash.
				fc.Evaluator.RecordFailure(repairID)
				fc.Metrics.Unsuccessful++
				cv.redeploy(fc)
			default:
				// The run survived (normal exit, or a failure at a
				// different location — §2.6's "may expose another
				// failure", handled as its own case below).
				fc.Evaluator.RecordSuccess(repairID)
				if fc.State == StateEvaluating {
					fc.State = StatePatched
				}
			}
		}
	}

	if res.Failure != nil {
		if _, known := cv.cases[failPC]; !known {
			cv.openCase(res.Failure, elapsed)
		}
	}
}

// redeploy picks the next best repair after a failure, or gives up when
// the candidate set is exhausted.
func (cv *ClearView) redeploy(fc *FailureCase) {
	if fc.Evaluator.Exhausted() {
		fc.State = StateUnrepaired
		fc.Current = nil
		return
	}
	fc.State = StateEvaluating
	fc.Current = fc.Evaluator.Best()
}

// openCase responds to the first detection of a failure at a new location:
// select candidate correlated invariants and build checking patches
// (§2.4.1, §2.4.2).
func (cv *ClearView) openCase(f *vm.Failure, elapsed time.Duration) {
	sp := cv.tr.Start("detect")
	defer sp.Finish()
	fc := &FailureCase{
		ID:    fmt.Sprintf("fail@%#x", f.PC),
		PC:    f.PC,
		State: StateChecking,
		Stack: f.Stack,
	}
	fc.Metrics.DetectRuns = 1
	fc.Metrics.DetectTime = elapsed

	buildStart := time.Now()
	fc.Candidates = correlate.SelectCandidates(
		cv.conf.Invariants, cv.cfgdb, f.PC, f.Stack,
		correlate.Config{
			StackScope:                  cv.conf.StackScope,
			DisableSameBlockRestriction: cv.conf.DisableSameBlockRestriction,
		},
	)
	fc.Metrics.CandidateCount = len(fc.Candidates)
	fc.CheckSet = correlate.BuildCheckSet(fc.ID, fc.Candidates)
	cv.PatchesGenerated += len(fc.CheckSet.Patches)
	for _, c := range fc.Candidates {
		if s := repair.KindSlot(c.Inv.Kind); s >= 0 {
			fc.Metrics.ChecksBuilt[s]++
		}
	}
	fc.Metrics.BuildChecks = time.Since(buildStart)

	cv.cases[f.PC] = fc
	cv.order = append(cv.order, f.PC)

	if len(fc.Candidates) == 0 {
		// Nothing to check: no invariants anywhere in scope. The failure
		// remains blocked by the monitors but cannot be repaired.
		fc.State = StateUnrepaired
	}
}

// finishChecking classifies correlations, discards the checking patches,
// and generates the candidate repairs (§2.4.3, §2.5).
func (cv *ClearView) finishChecking(fc *FailureCase) {
	sp := cv.tr.Start("correlate")
	defer sp.Finish()
	fc.Metrics.CheckExecs = fc.CheckSet.TotalChecks
	fc.Metrics.CheckViolations = fc.CheckSet.TotalViolations
	fc.Correlations = correlate.Classify(fc.CheckSet.Runs())

	buildStart := time.Now()
	selected := correlate.SelectForRepair(fc.Candidates, fc.Correlations)
	fc.Repairs = repair.GenerateAll(selected, cv.instAt, cv.conf.Invariants.SPOffsetAt)
	fc.Metrics.RepairCount = len(fc.Repairs)
	fc.Metrics.RepairsBuilt = repair.CountByKind(fc.Repairs)
	cv.PatchesGenerated += len(fc.Repairs)
	fc.Metrics.BuildRepairs = time.Since(buildStart)

	fc.Evaluator = evaluate.New(fc.Repairs, cv.conf.Bonus)
	fc.Evaluator.ReverseTieBreak = cv.conf.ReverseRepairOrder
	if fc.Evaluator.Len() == 0 {
		fc.State = StateUnrepaired
		return
	}
	fc.State = StateEvaluating
	fc.Current = fc.Evaluator.Best()
}

// Protected reports whether every known failure case has an adopted patch.
func (cv *ClearView) Protected() bool {
	for _, pc := range cv.order {
		if cv.cases[pc].State != StatePatched {
			return false
		}
	}
	return len(cv.order) > 0
}
