// Command disasm inspects the protected application's stripped binary: it
// lists the label map (a build-time artifact — the binary itself carries
// no symbols) or disassembles the code around an address. It is the
// debugging companion to failure locations reported by the monitors.
//
//	disasm                  list all labels
//	disasm 0x4010b8         disassemble around an address
package main

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/webapp"
)

func main() {
	app, err := webapp.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "disasm:", err)
		os.Exit(1)
	}
	var arg string
	if len(os.Args) >= 2 {
		arg = os.Args[1]
	}
	lines, err := describe(app, arg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "disasm:", err)
		os.Exit(1)
	}
	for _, line := range lines {
		fmt.Println(line)
	}
}

// describe renders the tool's output: the sorted label map when arg is
// empty, or the location header and surrounding disassembly for an
// address.
func describe(app *webapp.App, arg string) ([]string, error) {
	if arg == "" {
		var lines []string
		for _, name := range asm.SortedLabels(app.Labels) {
			lines = append(lines, fmt.Sprintf("%08x  %s", app.Labels[name], name))
		}
		return lines, nil
	}
	target64, err := strconv.ParseUint(arg, 0, 32)
	if err != nil {
		return nil, fmt.Errorf("bad address: %w", err)
	}
	target := uint32(target64)
	if !app.Image.Contains(target) {
		return nil, fmt.Errorf("%#x outside code [%#x,%#x)",
			target, app.Image.Base, app.Image.End())
	}

	var best string
	var bestAddr uint32
	for name, addr := range app.Labels {
		if addr <= target && addr > bestAddr {
			bestAddr, best = addr, name
		}
	}
	lines := []string{fmt.Sprintf("%#x is %s+%d", target, best, target-bestAddr), ""}

	off := int(target - app.Image.Base)
	lo := off - 4*isa.InstSize
	if lo < 0 {
		lo = 0
	}
	hi := off + 6*isa.InstSize
	if hi > len(app.Image.Code) {
		hi = len(app.Image.Code)
	}
	lines = append(lines, asm.Disassemble(app.Image.Code[lo:hi], app.Image.Base+uint32(lo))...)
	return lines, nil
}
