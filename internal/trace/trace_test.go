package trace

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/daikon"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/vm"
)

func buildImage(t *testing.T, build func(a *asm.Assembler)) (*image.Image, map[string]uint32) {
	t.Helper()
	a := asm.New(0x1000)
	build(a)
	code, labels, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := labels["main"]
	if !ok {
		entry = 0x1000
	}
	return &image.Image{Base: 0x1000, Entry: entry, Code: code}, labels
}

func learnRuns(t *testing.T, im *image.Image, rec *Recorder, inputs [][]byte) {
	t.Helper()
	for _, in := range inputs {
		v, err := vm.New(vm.Config{Image: im, Plugins: []vm.Plugin{rec}, Input: in})
		if err != nil {
			t.Fatal(err)
		}
		res := v.Run()
		if res.Outcome == vm.OutcomeExit {
			rec.CommitRun()
		} else {
			rec.DiscardRun()
		}
	}
}

func TestLearnsOneOfAtCallSite(t *testing.T) {
	// A CALLM dispatch through a static table: learning must produce a
	// one-of invariant on the function-pointer slot whose values are the
	// observed callees.
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovLabel(isa.EBX, "table")
		// Select entry 0 or 1 based on first input byte.
		a.MovRI(isa.EAX, 16)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.ESI, isa.EAX)
		a.MovRI(isa.ECX, 1)
		a.Sys(isa.SysRead)
		a.LoadB(isa.EDX, asm.M(isa.ESI, 0))
		a.Label("site")
		a.CallM(asm.MX(isa.EBX, isa.EDX, 2, 0))
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
		a.Label("f0")
		a.MovRI(isa.EDI, 1)
		a.Ret()
		a.Label("f1")
		a.MovRI(isa.EDI, 2)
		a.Ret()
		a.Label("table")
		a.WordLabel("f0")
		a.WordLabel("f1")
	})
	eng := daikon.NewEngine()
	rec := NewRecorder(eng)
	learnRuns(t, im, rec, [][]byte{{0}, {1}, {0}})

	db := eng.Finalize(daikon.Options{})
	site := labels["site"]
	var oneof *daikon.Invariant
	for _, inv := range db.At(site) {
		if inv.Kind == daikon.KindOneOf && isa.TargetSlot(isa.Inst{Op: isa.CALLM, B: isa.EBX, X: isa.EDX, Scale: 2}) == int(inv.Var.Slot) {
			oneof = inv
		}
	}
	if oneof == nil {
		t.Fatalf("no one-of on the call target slot at %#x; got %v", site, db.At(site))
	}
	if len(oneof.Values) != 2 || oneof.Values[0] != labels["f0"] || oneof.Values[1] != labels["f1"] {
		t.Errorf("one-of values = %#v, want f0/f1 addresses", oneof.Values)
	}
}

func TestLearnsLowerBoundOnInputDerivedValue(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 16)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.ESI, isa.EAX)
		a.MovRI(isa.ECX, 1)
		a.Sys(isa.SysRead)
		a.LoadB(isa.EDX, asm.M(isa.ESI, 0))
		// Derive a fresh value so duplicate-variable elimination does not
		// fold the observation at "use" into the LoadB's memval slot.
		a.AddRI(isa.EDX, 1)
		a.Label("use")
		a.MovRR(isa.ECX, isa.EDX) // observes EDX = byte+1 at "use"
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	eng := daikon.NewEngine()
	rec := NewRecorder(eng)
	learnRuns(t, im, rec, [][]byte{{3}, {7}, {5}})

	db := eng.Finalize(daikon.Options{})
	var lb *daikon.Invariant
	for _, inv := range db.At(labels["use"]) {
		if inv.Kind == daikon.KindLowerBound {
			lb = inv
		}
	}
	if lb == nil || lb.Bound != 4 {
		t.Fatalf("lower bound at use = %+v, want bound 4", lb)
	}
}

func TestErroneousRunDiscarded(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EAX, 16)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.ESI, isa.EAX)
		a.MovRI(isa.ECX, 1)
		a.Sys(isa.SysRead)
		a.LoadB(isa.EDX, asm.M(isa.ESI, 0))
		a.Label("use")
		a.MovRR(isa.ECX, isa.EDX)
		a.CmpRI(isa.EDX, 100)
		a.Je("crash")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
		a.Label("crash")
		a.Halt()
	})
	eng := daikon.NewEngine()
	rec := NewRecorder(eng)
	learnRuns(t, im, rec, [][]byte{{5}, {100}, {7}}) // 100 crashes

	db := eng.Finalize(daikon.Options{})
	for _, inv := range db.At(labels["use"]) {
		if inv.Kind == daikon.KindOneOf {
			for _, v := range inv.Values {
				if v == 100 {
					t.Fatal("value from a crashed run entered the database")
				}
			}
		}
	}
}

func TestSPOffsetLearned(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.Call("f")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
		a.Label("f")
		a.PushI(1)
		a.PushI(2)
		a.Label("deep")
		a.MovRI(isa.EBX, 9) // sp here = entry sp - 8
		a.Pop(isa.ECX)
		a.Pop(isa.ECX)
		a.Ret()
	})
	eng := daikon.NewEngine()
	rec := NewRecorder(eng)
	learnRuns(t, im, rec, [][]byte{nil, nil})

	db := eng.Finalize(daikon.Options{})
	if d, ok := db.SPOffsetAt(labels["deep"]); !ok || d != 8 {
		t.Fatalf("sp offset at deep = %d, %v; want 8", d, ok)
	}
}

func TestRegionFilter(t *testing.T) {
	im, labels := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EDX, 5)
		a.Label("traced")
		a.MovRR(isa.ECX, isa.EDX)
		a.Label("untraced")
		a.MovRR(isa.EBX, isa.EDX)
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	eng := daikon.NewEngine()
	rec := NewRecorder(eng)
	rec.Filter = func(pc uint32) bool { return pc == labels["traced"] }
	learnRuns(t, im, rec, [][]byte{nil})

	db := eng.Finalize(daikon.Options{})
	if len(db.At(labels["traced"])) == 0 {
		t.Error("filtered-in instruction not traced")
	}
	if len(db.At(labels["untraced"])) != 0 {
		t.Error("filtered-out instruction traced")
	}
}

func TestObservationCountGrows(t *testing.T) {
	im, _ := buildImage(t, func(a *asm.Assembler) {
		a.Label("main")
		a.MovRI(isa.EDX, 1)
		a.MovRR(isa.ECX, isa.EDX)
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
	})
	eng := daikon.NewEngine()
	rec := NewRecorder(eng)
	learnRuns(t, im, rec, [][]byte{nil})
	if rec.Observations() == 0 {
		t.Error("no observations recorded")
	}
}
