package community

import (
	"testing"

	"repro/internal/core"
	"repro/internal/redteam"
	"repro/internal/vm"
	"repro/internal/webapp"
)

func TestManagerRejectsUnknownMessage(t *testing.T) {
	app := webapp.MustBuild()
	m, err := NewManager(ManagerConfig{Image: app.Image})
	if err != nil {
		t.Fatal(err)
	}
	nodeSide, mgrSide := Pipe()
	done := make(chan error, 1)
	go func() { done <- m.Serve(mgrSide) }()
	if err := nodeSide.Send(Envelope{Kind: MsgAck}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("manager accepted a bogus message kind")
	}
}

func TestManagerRequiresImage(t *testing.T) {
	if _, err := NewManager(ManagerConfig{}); err == nil {
		t.Fatal("nil image accepted")
	}
}

func TestNodeReconnectKeepsShard(t *testing.T) {
	// A node that reconnects (same ID) keeps its learning assignment:
	// shard handouts are per-identity, not per-connection.
	app := webapp.MustBuild()
	m, err := NewManager(ManagerConfig{Image: app.Image, LearnShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	connect := func() *Node {
		nodeSide, mgrSide := Pipe()
		go func() { _ = m.Serve(mgrSide) }()
		n := NewNode("stable-id", app.Image, nodeSide)
		if err := n.Connect(); err != nil {
			t.Fatal(err)
		}
		return n
	}
	n1 := connect()
	lo1 := n1.Directives().LearnLo
	_ = n1.Close()
	n2 := connect()
	if n2.Directives().LearnLo != lo1 {
		t.Errorf("shard changed across reconnect: %#x vs %#x", lo1, n2.Directives().LearnLo)
	}
}

func TestStaleReportIgnored(t *testing.T) {
	// A report carrying an old directive sequence must not advance a
	// checking campaign (the node ran without the checking patches).
	app := webapp.MustBuild()
	setupDB, _, err := core.Learn(app.Image, core.LearnConfig{
		Inputs: [][]byte{redteam.LearningCorpus()},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(ManagerConfig{
		Image: app.Image, Seed: setupDB,
		BootstrapInputs: [][]byte{redteam.LearningCorpus()},
	})
	if err != nil {
		t.Fatal(err)
	}
	var ex redteam.Exploit
	for _, e := range redteam.Exploits() {
		if e.Bugzilla == "290162" {
			ex = e
		}
	}
	site := app.Labels["site_290162"]
	failure := &FailureInfo{PC: site, Monitor: "MemoryFirewall", Stack: []uint32{}}

	// First report opens the case (any seq).
	m.processReport(&RunReport{NodeID: "n", Seq: 0, Outcome: uint8(vm.OutcomeFailure), Failure: failure})
	if st := m.CaseStates()[site]; st != core.StateChecking {
		t.Fatalf("state = %v", st)
	}
	// Stale failing reports (seq 0 < the case's phase) must not count as
	// checking runs no matter how many arrive.
	for i := 0; i < 5; i++ {
		m.processReport(&RunReport{NodeID: "n", Seq: 0, Outcome: uint8(vm.OutcomeFailure), Failure: failure})
	}
	if st := m.CaseStates()[site]; st != core.StateChecking {
		t.Fatalf("stale reports advanced the campaign to %v", st)
	}
	_ = ex
}

func TestLearnShardsCoverImage(t *testing.T) {
	app := webapp.MustBuild()
	m, err := NewManager(ManagerConfig{Image: app.Image, LearnShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi []uint32
	for _, id := range []string{"a", "b", "c"} {
		nodeSide, mgrSide := Pipe()
		go func() { _ = m.Serve(mgrSide) }()
		n := NewNode(id, app.Image, nodeSide)
		if err := n.Connect(); err != nil {
			t.Fatal(err)
		}
		d := n.Directives()
		lo = append(lo, d.LearnLo)
		hi = append(hi, d.LearnHi)
	}
	// Shards tile the code range: consecutive, starting at the base, and
	// jointly covering the end.
	if lo[0] != app.Image.Base {
		t.Errorf("first shard starts at %#x", lo[0])
	}
	for i := 1; i < 3; i++ {
		if lo[i] != hi[i-1] {
			t.Errorf("shard %d not contiguous: [%#x,%#x) after [%#x,%#x)", i, lo[i], hi[i], lo[i-1], hi[i-1])
		}
	}
	if hi[2] < app.Image.End() {
		t.Errorf("shards end at %#x, image ends at %#x", hi[2], app.Image.End())
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	rep := RunReport{NodeID: "x", Seq: 7, Outcome: 1, Failure: &FailureInfo{PC: 0x42, Stack: []uint32{1, 2}}}
	env, err := NewEnvelope(MsgRunReport, rep)
	if err != nil {
		t.Fatal(err)
	}
	var got RunReport
	if err := decodePayload(env.Payload, &got); err != nil {
		t.Fatal(err)
	}
	if got.NodeID != "x" || got.Seq != 7 || got.Failure.PC != 0x42 || len(got.Failure.Stack) != 2 {
		t.Errorf("round trip lost data: %+v", got)
	}
}
