package community

import (
	"testing"

	"repro/internal/redteam"
	"repro/internal/vm"
	"repro/internal/webapp"
)

// TestNewClassProtectionWithoutExposure runs the §3 community story for
// the extended failure classes (divide-by-zero, unaligned access, runaway
// loop): a victim absorbs the attack until the community adopts a repair,
// and a member that was never attacked survives its first contact — the
// adopted patch crossed the community, not just the victim.
func TestNewClassProtectionWithoutExposure(t *testing.T) {
	app := webapp.MustBuild()
	conf := redTeamManagerConfig(t, app)
	for _, ex := range redteam.NewClassExploits() {
		ex := ex
		t.Run(ex.Bugzilla, func(t *testing.T) {
			_, nodes := startManager(t, conf, []string{"victim", "fresh"})
			victim, fresh := nodes[0], nodes[1]
			attack := redteam.AttackInput(app, ex, 0)

			patched := false
			for i := 0; i < 10 && !patched; i++ {
				res, err := victim.RunOnce(attack)
				if err != nil {
					t.Fatal(err)
				}
				patched = res.Outcome == vm.OutcomeExit && res.ExitCode == 0
			}
			if !patched {
				t.Fatalf("%s: victim never survived", ex.Bugzilla)
			}
			res, err := fresh.RunOnce(attack)
			if err != nil {
				t.Fatal(err)
			}
			if res.Outcome != vm.OutcomeExit || res.ExitCode != 0 {
				t.Fatalf("%s: unexposed member not immune on first contact: %+v", ex.Bugzilla, res)
			}
		})
	}
}

// TestNewClassSoakConverges: a small batched soak whose attack mix is
// exactly the three extended failure classes must converge every node
// onto one adopted repair per defect, with the manager's replay fast path
// doing the checking and ranking offline.
func TestNewClassSoakConverges(t *testing.T) {
	app := webapp.MustBuild()
	mc := redTeamManagerConfig(t, app)
	var attacks []SoakAttack
	for _, ex := range redteam.NewClassExploits() {
		attacks = append(attacks, SoakAttack{
			Label: ex.Bugzilla, Input: redteam.AttackInput(app, ex, 0),
		})
	}
	rep, err := RunSoak(SoakConfig{
		Image:           mc.Image,
		Seed:            mc.Seed,
		BootstrapInputs: mc.BootstrapInputs,
		Nodes:           6,
		Rounds:          6,
		Attacks:         attacks,
		Benign:          redteam.EvaluationPages()[:2],
		Batched:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("soak over the new classes did not converge: %+v", rep)
	}
	for _, d := range rep.Defects {
		if !d.Converged || d.Adopted == "" {
			t.Fatalf("defect %s did not converge: %+v", d.Label, d)
		}
		if d.Agree != rep.Nodes {
			t.Fatalf("defect %s: %d/%d nodes agree", d.Label, d.Agree, rep.Nodes)
		}
	}
}

// TestUnknownMonitorReportRejected: the static report sanity check must
// reject a failure report naming a monitor no deployed detector produces
// — such a claim can never be vetted by replay and would otherwise open
// an unvettable failure case.
func TestUnknownMonitorReportRejected(t *testing.T) {
	app := webapp.MustBuild()
	conf := redTeamManagerConfig(t, app)
	conf.VetReports = true
	m, err := NewManager(conf)
	if err != nil {
		t.Fatal(err)
	}
	site := app.Labels["site_290162"]
	m.processReport(&RunReport{
		NodeID: "liar", Seq: 0, Outcome: uint8(vm.OutcomeFailure),
		Failure: &FailureInfo{PC: site, Monitor: "TotallyRealGuard"},
	})
	if n := len(m.CaseStates()); n != 0 {
		t.Fatalf("fabricated-monitor report opened %d cases", n)
	}
	// The same report under a deployed detector's name is accepted.
	m2, err := NewManager(conf)
	if err != nil {
		t.Fatal(err)
	}
	m2.processReport(&RunReport{
		NodeID: "honest", Seq: 0, Outcome: uint8(vm.OutcomeFailure),
		Failure: &FailureInfo{PC: site, Monitor: "MemoryFirewall", Stack: []uint32{}},
	})
	if n := len(m2.CaseStates()); n != 1 {
		t.Fatalf("legitimate report opened %d cases, want 1", n)
	}
}
