package community

import (
	"bytes"
	"fmt"

	"repro/internal/daikon"
	"repro/internal/image"
	"repro/internal/monitor"
	"repro/internal/replay"
	"repro/internal/vm"
)

// maxVetSteps bounds the step budget a community recording may claim.
// Community nodes seal recordings at exactly vm.DefaultMaxSteps, so any
// larger claim is not honest traffic — it is an attempt to make replays of
// the recording (the vetting pass, the abandoned goroutine a vet deadline
// leaves behind, and the manager's fast-path replays, which run under the
// manager lock) take arbitrarily long. Checked statically at both tiers,
// before any replay, which caps every single replay's work at one honest
// run's budget.
const maxVetSteps = vm.DefaultMaxSteps

// requireSender rejects messages with no sender identity. Every piece of
// community state — shards, assignments, quarantine — is keyed by node
// ID, so an anonymous message has no accountable place in the protocol:
// accepting one would let an attacker send tamperable input that no
// quarantine can ever stick to.
func requireSender(nodeID string) error {
	if nodeID == "" {
		return fmt.Errorf("community: message carries no sender ID")
	}
	return nil
}

// bindSender pins a connection to the first sender identity it claims:
// every later message on the same connection must claim the same ID, or
// the connection is dropped as a protocol violation. Identity on a fresh
// connection is still self-asserted — authenticating it is the transport's
// job (the management console's secure channel; see ARCHITECTURE.md's
// divergences) — but binding means a member that has spoken as itself can
// never switch to a peer's identity (to frame it with tampered traffic) or
// to an aggregator's (to exercise aggregator powers) on that connection.
func bindSender(bound *string, claimed string) error {
	if err := requireSender(claimed); err != nil {
		return err
	}
	if *bound == "" {
		*bound = claimed
	}
	if *bound != claimed {
		return fmt.Errorf("community: connection bound to sender %q got a message claiming %q", *bound, claimed)
	}
	return nil
}

// checkRecordingStatic returns the reason a recording is implausible
// without replaying it: its embedded image must be byte-identical to the
// protected binary (a recording is replayed against its OWN image, so a
// recording of some other program could "reproduce" any claim), its
// claimed failure must sit in the code range, and its step budget must be
// community-plausible.
func checkRecordingStatic(img *image.Image, imgWire []byte, rec *replay.Recording, pc uint32) string {
	if !bytes.Equal(rec.Image, imgWire) {
		return "recording image does not match the protected binary"
	}
	if !img.Contains(pc) {
		return fmt.Sprintf("recording claims failure outside the code range (%#x)", pc)
	}
	if rec.MaxSteps > maxVetSteps {
		return fmt.Sprintf("recording claims an implausible step budget (%d)", rec.MaxSteps)
	}
	return ""
}

// knownMonitors is the detector set a community member can legitimately
// claim in a failure report, derived from the monitor package's canonical
// list so a new detector can never be rejected here by omission. A report
// naming any other monitor is fabricated: no deployed detector produces
// it, so no replay could ever vet it, and accepting it would open an
// unvettable failure case.
var knownMonitors = func() map[string]bool {
	out := make(map[string]bool, len(monitor.DetectorNames))
	for _, name := range monitor.DetectorNames {
		out[name] = true
	}
	return out
}()

// checkReportStatic returns the reason a run report is implausible for the
// protected image, judged from the binary alone (no campaign state), or
// "". These are the checks an aggregator can apply at the edge; the
// manager layers observation-provenance checks on top.
func checkReportStatic(img *image.Image, rep *RunReport) string {
	if rep.Failure == nil {
		return ""
	}
	if !knownMonitors[rep.Failure.Monitor] {
		return fmt.Sprintf("failure claims unknown monitor %q", rep.Failure.Monitor)
	}
	if !img.Contains(rep.Failure.PC) {
		return fmt.Sprintf("failure PC %#x outside the code range", rep.Failure.PC)
	}
	for _, pc := range rep.Failure.Stack {
		if !img.Contains(pc) {
			return fmt.Sprintf("stack entry %#x outside the code range", pc)
		}
	}
	// Targets may legitimately point at data (heap writes), so only
	// control-transfer failures pin the target to the code range.
	if rep.Failure.Monitor == "ShadowStack" && rep.Failure.Target != 0 && !img.Contains(rep.Failure.Target) {
		return fmt.Sprintf("control transfer target %#x outside the code range", rep.Failure.Target)
	}
	return ""
}

// checkLearnDBStatic returns the reason an uploaded invariant database is
// implausible, or "". Every invariant must describe instructions inside
// the protected image — §3.1 uploads carry invariants only, and an
// invariant at an address the binary does not contain can only poison the
// community database.
func checkLearnDBStatic(img *image.Image, db *daikon.DB) string {
	for _, inv := range db.All() {
		if !img.Contains(inv.Var.PC) {
			return fmt.Sprintf("uploaded invariant %s outside the code range", inv.ID())
		}
		if inv.NumVars() == 2 && !img.Contains(inv.Var2.PC) {
			return fmt.Sprintf("uploaded invariant %s outside the code range", inv.ID())
		}
	}
	for v := range db.VarsSeen {
		if !img.Contains(v.PC) {
			return fmt.Sprintf("uploaded variable %s outside the code range", v)
		}
	}
	return ""
}
