package sim

import (
	"reflect"
	"testing"

	"repro/internal/community"
	"repro/internal/webapp"
)

// walk drives a member's state machine through one full turn without a
// community behind it: beginState, then next() until the machine parks,
// feeding detected from the detects table at each execute (the rig sets
// it from the real run's failure info; here it is scripted).
func walk(m *simMember, detects []bool) []NodeState {
	m.idx = 0
	m.state = m.beginState()
	var visited []NodeState
	for m.state != StateIdle {
		visited = append(visited, m.state)
		if m.state == StateExecute {
			m.detected = detects[m.idx]
		}
		next := m.next()
		if len(visited) > 64 {
			panic("state machine did not park")
		}
		m.state = next
	}
	return visited
}

// TestNodeStateMachine tables every modeled role through a turn:
// honest members in both shipping modes, each adversary flavor fresh
// and after tampering (with and without resilience — the re-offender),
// and crashed members. The walks are the protocol shapes the rig
// schedules one event apiece, so this is the state machine's ground
// truth.
func TestNodeStateMachine(t *testing.T) {
	inputs := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	cases := []struct {
		name    string
		m       simMember
		inputs  int
		detects []bool
		want    []NodeState
	}{
		{
			name: "honest-batched", m: simMember{batched: true},
			inputs: 3, detects: []bool{true, false, true},
			// One sync, every input executed into the batch (failures
			// metered as they land), one report, one adopt.
			want: []NodeState{StateSync, StateExecute, StateDetect, StateExecute,
				StateExecute, StateDetect, StateReport, StateAdopt},
		},
		{
			name: "honest-per-message", m: simMember{},
			inputs: 2, detects: []bool{false, true},
			// Per-message mode re-syncs and reports per input, mirroring
			// RunOnce-per-input turns.
			want: []NodeState{StateSync, StateExecute, StateReport, StateAdopt,
				StateSync, StateExecute, StateDetect, StateReport, StateAdopt},
		},
		{
			name: "honest-single-input", m: simMember{batched: true},
			inputs: 1, detects: []bool{false},
			want: []NodeState{StateSync, StateExecute, StateReport, StateAdopt},
		},
		{
			name: "spoofer-fresh", m: simMember{adversary: true},
			inputs: 3, want: []NodeState{StateTamper},
		},
		{
			name: "forger-fresh", m: simMember{adversary: true, forger: true, advIndex: 1},
			inputs: 3, want: []NodeState{StateTamper},
		},
		{
			name: "adversary-tampered", m: simMember{adversary: true, tampered: true},
			inputs: 3, want: []NodeState{StateDecoy},
		},
		{
			name: "re-offender", m: simMember{adversary: true, tampered: true, resilient: true},
			inputs: 3, want: []NodeState{StateTamper},
		},
		{
			name: "crashed", m: simMember{crashed: true},
			inputs: 3, want: []NodeState{StateCrashed},
		},
		{
			name: "crashed-adversary", m: simMember{crashed: true, adversary: true},
			inputs: 3, want: []NodeState{StateCrashed},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := tc.m
			m.inputs = inputs[:tc.inputs]
			got := walk(&m, tc.detects)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("turn walked %v, want %v", got, tc.want)
			}
		})
	}
}

// TestSimChurnTransitions runs a small simulated campaign with every
// churn transition live — per-round crashes (the crashed member sits a
// round out, then rejoins under a different aggregator), mid-campaign
// joins, and both adversary flavors — and checks the report accounts
// each transition and the campaign still converges with the adversaries
// quarantined.
func TestSimChurnTransitions(t *testing.T) {
	app := webapp.MustBuild()
	conf := simSoakConfig(t, app, 18, true)
	conf.Aggregators = 3
	conf.Adversaries = 2 // adv000 spoofer, adv001 forger
	conf.Churn = &community.ChurnConfig{CrashPerRound: 2, JoinPerRound: 1}
	rep, err := Run(conf)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("campaign did not converge: %+v", rep)
	}
	if rep.Crashes == 0 || rep.Rejoins == 0 || rep.Joins == 0 {
		t.Fatalf("churn transitions not all exercised: crashes=%d rejoins=%d joins=%d",
			rep.Crashes, rep.Rejoins, rep.Joins)
	}
	if rep.Rejoins != rep.Crashes-2 {
		// Every crash rejoins next round except the final round's batch.
		t.Fatalf("rejoins %d, want crashes-2 = %d", rep.Rejoins, rep.Crashes-2)
	}
	if got, want := rep.Quarantined, []string{"adv000", "adv001"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("quarantined %v, want %v", got, want)
	}
	if rep.QuarantinedAdoptions != 0 {
		t.Fatalf("%d adoptions credited to quarantined nodes", rep.QuarantinedAdoptions)
	}
}
