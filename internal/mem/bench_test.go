package mem

import (
	"testing"
)

// benchMemory maps a 64-page working set with deterministic contents.
func benchMemory(b *testing.B) *Memory {
	b.Helper()
	m := New()
	m.Map(0x1000, 64*PageSize)
	for i := uint32(0); i < 64*PageSize; i += 4 {
		if err := m.Write32(0x1000+i, i*2654435761); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// BenchmarkRead32 sweeps word reads across the working set — the
// interpreter's LOAD fast path.
func BenchmarkRead32(b *testing.B) {
	m := benchMemory(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		v, err := m.Read32(0x1000 + uint32(i*4)%(64*PageSize-4))
		if err != nil {
			b.Fatal(err)
		}
		sink += v
	}
	_ = sink
}

// BenchmarkWrite32 sweeps word writes — the STORE fast path, with no COW
// in play.
func BenchmarkWrite32(b *testing.B) {
	m := benchMemory(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Write32(0x1000+uint32(i*4)%(64*PageSize-4), uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWrite32AfterClone measures the write path while every page is
// COW-shared: the first write per page privatizes it, the rest take the
// writable fast path again.
func BenchmarkWrite32AfterClone(b *testing.B) {
	m := benchMemory(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			b.StopTimer()
			_ = m.Clone() // reshare all pages
			b.StartTimer()
		}
		if err := m.Write32(0x1000+uint32(i*4)%(64*PageSize-4), uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadBytes4K copies one page-sized run — the SYS write /
// instruction-fetch bulk path.
func BenchmarkReadBytes4K(b *testing.B) {
	m := benchMemory(b)
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ReadBytes(0x1800, 4096); err != nil { // unaligned: straddles 2 pages
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteBytes4K writes one page-sized run — the SYS read bulk path.
func BenchmarkWriteBytes4K(b *testing.B) {
	m := benchMemory(b)
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	b.SetBytes(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.WriteBytes(0x1800, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshalRoundTrip tracks the snapshot wire cost: serialize and
// reconstruct the 64-page working set (what a replay.Recording pays per
// captured memory image).
func BenchmarkMarshalRoundTrip(b *testing.B) {
	m := benchMemory(b)
	raw, err := m.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := m.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		var back Memory
		if err := back.UnmarshalBinary(raw); err != nil {
			b.Fatal(err)
		}
	}
}
