package redteam

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/core"
)

// Table1Row is one exploit's outcome in the Table 1 reproduction.
type Table1Row struct {
	Bugzilla      string
	ErrorType     string
	Presentations int
	Paper         int // the paper's count (0 = not listed / never patched)
	Patched       bool
	Blocked       bool
	Reconfigured  string // which §4.3.2 reconfiguration was applied, if any
}

// Table3Row is one failure case's processing breakdown (Table 3). One
// exploit may contribute several rows (311710 has three defects).
type Table3Row struct {
	Bugzilla     string
	CaseID       string
	DetectRuns   int
	ChecksBuilt  [5]int // [one-of, lower-bound, less-than, nonzero, modulus]
	CheckRuns    int
	CheckExecs   uint64
	CheckViol    uint64
	RepairsBuilt [5]int
	Unsuccessful int
	Patched      bool
	BuildChecks  time.Duration
	BuildRepairs time.Duration
	RunTime      time.Duration // detection + checking + repair evaluation runs
	Total        time.Duration
}

// exerciseOne runs a full single-variant campaign for one exploit under
// its required configuration and returns the ClearView instance and result.
func exerciseOne(setups map[bool]*Setup, ex Exploit) (*core.ClearView, AttackResult, error) {
	setup := setups[ex.NeedsExpandedCorpus]
	cv, err := setup.ClearView(ex.NeedsStackScope)
	if err != nil {
		return nil, AttackResult{}, err
	}
	res := RunSingleVariant(cv, setup.App, ex, 24)
	return cv, res, nil
}

// buildSetups prepares the default and expanded-corpus setups once.
func buildSetups() (map[bool]*Setup, error) {
	base, err := NewSetup(false)
	if err != nil {
		return nil, err
	}
	expanded, err := NewSetup(true)
	if err != nil {
		return nil, err
	}
	return map[bool]*Setup{false: base, true: expanded}, nil
}

// RunTable1 reproduces Table 1 over the full defect matrix: the paper's
// ten exploits under the configuration the paper used for each row, plus
// the three extended-failure-class rows (FaultGuard/HangGuard defects).
func RunTable1() ([]Table1Row, error) {
	setups, err := buildSetups()
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, ex := range AllExploits() {
		cv, res, err := exerciseOne(setups, ex)
		if err != nil {
			return nil, err
		}
		_ = cv
		row := Table1Row{
			Bugzilla:      ex.Bugzilla,
			ErrorType:     ex.ErrorType,
			Presentations: res.Presentations,
			Paper:         ex.PaperPresentations,
			Patched:       res.Patched,
			Blocked:       res.Blocked,
		}
		if ex.NeedsStackScope > 1 {
			row.Reconfigured = fmt.Sprintf("stack scope %d", ex.NeedsStackScope)
		}
		if ex.NeedsExpandedCorpus {
			row.Reconfigured = "expanded corpus"
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RunTable3 reproduces Table 3: the per-phase processing breakdown for
// every failure case of every exploit.
func RunTable3() ([]Table3Row, error) {
	setups, err := buildSetups()
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, ex := range AllExploits() {
		cv, _, err := exerciseOne(setups, ex)
		if err != nil {
			return nil, err
		}
		cases := cv.Cases()
		sort.Slice(cases, func(i, j int) bool { return cases[i].PC < cases[j].PC })
		for i, fc := range cases {
			id := ex.Bugzilla
			if len(cases) > 1 {
				id = fmt.Sprintf("%s%c", ex.Bugzilla, 'a'+i)
			}
			m := fc.Metrics
			runTime := m.DetectTime + m.CheckRunTime + m.RepairRunTime
			rows = append(rows, Table3Row{
				Bugzilla:     id,
				CaseID:       fc.ID,
				DetectRuns:   m.DetectRuns,
				ChecksBuilt:  m.ChecksBuilt,
				CheckRuns:    m.CheckRuns,
				CheckExecs:   m.CheckExecs,
				CheckViol:    m.CheckViolations,
				RepairsBuilt: m.RepairsBuilt,
				Unsuccessful: m.Unsuccessful,
				Patched:      fc.State == core.StatePatched,
				BuildChecks:  m.BuildChecks,
				BuildRepairs: m.BuildRepairs,
				RunTime:      runTime,
				Total:        runTime + m.BuildChecks + m.BuildRepairs,
			})
		}
	}
	return rows, nil
}

// Summary aggregates §4.4.3-style statistics from Table 1 rows.
type Summary struct {
	Exploits        int
	Blocked         int
	Patched         int
	MeanPresent     float64 // mean presentations over patched exploits
	TotalPresent    int
	NeverRepairable int
}

// Summarize computes the §4.4.3 aggregate.
func Summarize(rows []Table1Row) Summary {
	var s Summary
	s.Exploits = len(rows)
	sum := 0
	for _, r := range rows {
		if r.Blocked {
			s.Blocked++
		}
		if r.Patched {
			s.Patched++
			sum += r.Presentations
		} else {
			s.NeverRepairable++
		}
	}
	s.TotalPresent = sum
	if s.Patched > 0 {
		s.MeanPresent = float64(sum) / float64(s.Patched)
	}
	return s
}

// PrintTable1 renders Table 1 rows.
func PrintTable1(w io.Writer, rows []Table1Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Bugzilla\tPresentations\tPaper\tError Type\tNotes")
	for _, r := range rows {
		pres := fmt.Sprint(r.Presentations)
		if !r.Patched {
			pres = "— (blocked, not patched)"
		}
		paper := fmt.Sprint(r.Paper)
		if r.Paper == 0 {
			paper = "—"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", r.Bugzilla, pres, paper, r.ErrorType, r.Reconfigured)
	}
	tw.Flush()
}

// PrintTable3 renders Table 3 rows.
func PrintTable3(w io.Writer, rows []Table3Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Bugzilla\tDetect\tChecks[1of,lb,lt,nz,mod]\tCheckRuns\tViol/Total\tRepairs[1of,lb,lt,nz,mod]\tUnsucc\tPatched\tTime")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%d\t(%d/%d)\t%v\t%d\t%v\t%s\n",
			r.Bugzilla, r.DetectRuns, r.ChecksBuilt, r.CheckRuns,
			r.CheckViol, r.CheckExecs, r.RepairsBuilt, r.Unsuccessful,
			r.Patched, r.Total.Round(time.Microsecond))
	}
	tw.Flush()
}
