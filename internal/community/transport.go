package community

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// Conn is one bidirectional message channel between a node and the
// manager. Implementations must be safe for one concurrent sender and one
// concurrent receiver.
type Conn interface {
	Send(Envelope) error
	Recv() (Envelope, error)
	Close() error
}

// ---- in-process transport ----

// pipeShared is the state common to both ends of an in-process pipe; the
// close is shared so that either (or both) ends may Close safely.
type pipeShared struct {
	once sync.Once
	done chan struct{}
}

func (s *pipeShared) close() { s.once.Do(func() { close(s.done) }) }

type pipeConn struct {
	out    chan<- Envelope
	in     <-chan Envelope
	shared *pipeShared
}

// Pipe returns a connected in-process transport pair (node side, manager
// side). It is the test/bench substrate; the TCP transport below is the
// deployment analog. Closing either end closes the pair.
func Pipe() (Conn, Conn) {
	a := make(chan Envelope, 64)
	b := make(chan Envelope, 64)
	shared := &pipeShared{done: make(chan struct{})}
	return &pipeConn{out: a, in: b, shared: shared},
		&pipeConn{out: b, in: a, shared: shared}
}

func (c *pipeConn) Send(e Envelope) error {
	select {
	case <-c.shared.done:
		return fmt.Errorf("community: send on closed pipe")
	case c.out <- e:
		return nil
	}
}

func (c *pipeConn) Recv() (Envelope, error) {
	select {
	case <-c.shared.done:
		return Envelope{}, fmt.Errorf("community: recv on closed pipe")
	case e, ok := <-c.in:
		if !ok {
			return Envelope{}, fmt.Errorf("community: pipe closed")
		}
		return e, nil
	}
}

func (c *pipeConn) Close() error {
	c.shared.close()
	return nil
}

// ---- TCP transport ----

type tcpConn struct {
	c   net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	sMu sync.Mutex
	rMu sync.Mutex
}

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

func (t *tcpConn) Send(e Envelope) error {
	t.sMu.Lock()
	defer t.sMu.Unlock()
	return t.enc.Encode(e)
}

func (t *tcpConn) Recv() (Envelope, error) {
	t.rMu.Lock()
	defer t.rMu.Unlock()
	var e Envelope
	err := t.dec.Decode(&e)
	return e, err
}

func (t *tcpConn) Close() error { return t.c.Close() }

// Dial connects a node to a manager's TCP listener.
func Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("community: dial %s: %w", addr, err)
	}
	return newTCPConn(c), nil
}

// Listener accepts node connections for a manager.
type Listener struct {
	l net.Listener
}

// Listen opens a manager-side TCP listener on addr ("127.0.0.1:0" for an
// ephemeral test port).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("community: listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept returns the next node connection.
func (l *Listener) Accept() (Conn, error) {
	c, err := l.l.Accept()
	if err != nil {
		return nil, err
	}
	return newTCPConn(c), nil
}

// Close stops accepting.
func (l *Listener) Close() error { return l.l.Close() }
