package community

import (
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy configures the resilient client path shared by nodes and
// aggregators: how long a receive may wait before it is declared lost, how
// many times a round trip is attempted, and how the backoff between
// attempts grows. Zero fields take the defaults below. The policy value is
// shared; each client derives its own jitter stream from Seed and its
// identity, so a fleet retrying after the same fault does not reconnect in
// lockstep.
type RetryPolicy struct {
	// MaxAttempts bounds the hard-failure attempts per round trip — dead
	// wires, partitions, refused re-dials — first try included (default 6).
	MaxAttempts int
	// TimeoutAttempts bounds the TOTAL attempts when receives keep timing
	// out on a healthy connection (default 8x MaxAttempts). A slow upstream
	// — a root applying a large flush behind the replication lock — needs
	// patience, not reconnection: the client re-sends in place (duplicates
	// are deduplicated upstream) and the budget for that is much larger
	// than for hard failures.
	TimeoutAttempts int
	// BaseDelay is the backoff before the first retry (default 1ms); each
	// further retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the doubled backoff (default 50ms).
	MaxDelay time.Duration
	// RecvTimeout bounds each receive (default 250ms): a dropped request
	// or reply surfaces as a timeout instead of hanging the client.
	RecvTimeout time.Duration
	// Seed feeds the per-client jitter generators.
	Seed int64
}

// DefaultRetry is the policy the chaos soak arms.
func DefaultRetry(seed int64) *RetryPolicy { return &RetryPolicy{Seed: seed} }

// withDefaults fills zero fields in a copy.
func (p *RetryPolicy) withDefaults() RetryPolicy {
	out := *p
	if out.MaxAttempts <= 0 {
		out.MaxAttempts = 6
	}
	if out.TimeoutAttempts <= 0 {
		out.TimeoutAttempts = 8 * out.MaxAttempts
	}
	if out.BaseDelay <= 0 {
		out.BaseDelay = time.Millisecond
	}
	if out.MaxDelay <= 0 {
		out.MaxDelay = 50 * time.Millisecond
	}
	if out.RecvTimeout <= 0 {
		out.RecvTimeout = 250 * time.Millisecond
	}
	return out
}

// retrier is one client's retry state: the normalized policy plus a seeded
// jitter generator (mutex-guarded; a node's round trips are serial, but an
// aggregator's flush path and its members' handlers share the struct).
type retrier struct {
	pol RetryPolicy
	mu  sync.Mutex
	rng *rand.Rand
}

// newRetrier derives a client's retrier from the shared policy and the
// client's stable identity.
func newRetrier(p *RetryPolicy, id string) *retrier {
	pol := p.withDefaults()
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return &retrier{
		pol: pol,
		rng: rand.New(rand.NewSource(mixSeed(pol.Seed, int64(h.Sum64())))),
	}
}

// backoff computes the delay before retry number attempt (0-based):
// exponential growth capped at MaxDelay, with the upper half jittered so
// clients sharing a fault do not retry in phase.
func (r *retrier) backoff(attempt int) time.Duration {
	d := r.pol.BaseDelay
	for i := 0; i < attempt && d < r.pol.MaxDelay; i++ {
		d *= 2
	}
	if d > r.pol.MaxDelay {
		d = r.pol.MaxDelay
	}
	half := d / 2
	r.mu.Lock()
	jitter := time.Duration(r.rng.Int63n(int64(half) + 1))
	r.mu.Unlock()
	return half + jitter
}

// sleep waits out the backoff before retry number attempt.
func (r *retrier) sleep(attempt int) { time.Sleep(r.backoff(attempt)) }
