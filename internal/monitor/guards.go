package monitor

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/vm"
)

// DetectorNames lists the name of every failure detector this package
// can deploy — the exact strings the monitors put in vm.Failure.Monitor.
// It is the single source for every consumer that must recognize
// legitimate detections (the community's report sanity checks, tests):
// a failure report naming anything else is fabricated. Keep it in sync
// with the Name methods; the docs test enforces the correspondence.
var DetectorNames = []string{
	"MemoryFirewall",
	"HeapGuard",
	"ShadowStack",
	"FaultGuard",
	"HangGuard",
}

// FaultGuard is the arithmetic-fault detector: it validates the operands
// of faultable instructions (DIVRR/MODRR divisors, LOADA addresses) just
// before they execute and terminates the application with a monitored
// failure when the instruction would otherwise raise a hardware fault.
// Like Heap Guard it is conservative — it fires exactly when the fault
// would fire — so it has no false positives, but unlike the raw fault the
// failure carries the ClearView provenance (failure location, monitor,
// shadow-stack snapshot) the correlation machinery needs.
type FaultGuard struct {
	Enabled bool
}

// NewFaultGuard returns an enabled arithmetic-fault monitor.
func NewFaultGuard() *FaultGuard { return &FaultGuard{Enabled: true} }

// Name implements vm.Plugin.
func (g *FaultGuard) Name() string { return "FaultGuard" }

// Instrument implements vm.Plugin: every faultable instruction is checked
// against its fault condition. Because repairs run at a lower priority, an
// enforced invariant that clamps a divisor or re-aligns an address is
// validated on the enforced value, exactly as Memory Firewall validates
// redirected transfers.
func (g *FaultGuard) Instrument(_ *vm.VM, b *vm.Block) {
	for i, in := range b.Insts {
		if !in.Op.Faultable() {
			continue
		}
		switch in.Op {
		case isa.DIVRR, isa.MODRR:
			b.AddHook(i, vm.PrioMonitor, func(ctx *vm.Ctx) error {
				if !g.Enabled {
					return nil
				}
				if ctx.Reg(ctx.Inst.B) != 0 {
					return nil
				}
				return &vm.Failure{
					PC:      ctx.PC,
					Monitor: "FaultGuard",
					Kind:    "divide by zero",
					Detail:  fmt.Sprintf("%s with zero divisor", ctx.Inst.Op),
				}
			})
		case isa.LOADA:
			b.AddHook(i, vm.PrioMonitor, func(ctx *vm.Ctx) error {
				if !g.Enabled {
					return nil
				}
				addr := ctx.EffAddr()
				if addr&3 == 0 {
					return nil
				}
				return &vm.Failure{
					PC:      ctx.PC,
					Monitor: "FaultGuard",
					Kind:    "unaligned access",
					Detail:  fmt.Sprintf("%s at %#x", ctx.Inst.Op, addr),
					Target:  addr,
				}
			})
		}
	}
}

// DefaultHangBudget is the default step budget of the hang watchdog. It is
// sized well above any legitimate single-input run of the protected
// workload (the heaviest evaluation page stays under a tenth of it) and
// well below vm.DefaultMaxSteps, so the watchdog fires long before the
// machine's hard hang crash while never tripping on honest traffic.
const DefaultHangBudget = 400_000

// HangGuard is the runaway-loop detector — the paper's "infinite loop"
// future-work failure class. It arms the machine's step-budget watchdog:
// once the budget is exhausted, the next basic-block dispatch (the point
// that already records edge coverage) terminates the run with a monitored
// failure whose location is the looping block's head. The budget check
// rides the dispatch path, so per-instruction execution pays nothing.
//
// A step budget cannot decide loop termination in general; HangGuard is
// deliberately calibrated (budget >> any legitimate run) so that, on the
// workloads the community runs, it behaves like the other monitors: no
// false positives in practice, deterministic failure locations always.
type HangGuard struct {
	// Budget is the step budget; 0 selects DefaultHangBudget.
	Budget uint64
}

// NewHangGuard returns a hang monitor with the default budget.
func NewHangGuard() *HangGuard { return &HangGuard{} }

// Name implements vm.Plugin.
func (h *HangGuard) Name() string { return "HangGuard" }

// Instrument implements vm.Plugin; the watchdog needs no per-block hooks.
func (h *HangGuard) Instrument(_ *vm.VM, _ *vm.Block) {}

// EffectiveBudget returns the armed budget.
func (h *HangGuard) EffectiveBudget() uint64 {
	if h.Budget == 0 {
		return DefaultHangBudget
	}
	return h.Budget
}

// Install arms the machine's hang watch (like ShadowStack.Install, wiring
// beyond per-block instrumentation is explicit).
func (h *HangGuard) Install(v *vm.VM) {
	budget := h.EffectiveBudget()
	v.SetHangWatch(budget, func(pc uint32, steps uint64) *vm.Failure {
		return &vm.Failure{
			PC:      pc,
			Monitor: "HangGuard",
			Kind:    "runaway loop",
			Detail:  fmt.Sprintf("step budget %d exhausted", budget),
		}
	})
}
