// Command attacklog narrates one exploit campaign presentation by
// presentation: outcomes, failure sites, case states, candidate
// invariants, correlations, and the score of every candidate repair. It is
// the debugging lens behind the Table 1/Table 3 numbers.
//
//	attacklog 290162
package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/redteam"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: attacklog <bugzilla-or-class-id>")
		os.Exit(2)
	}
	if err := run(os.Stdout, os.Args[1]); err != nil {
		fmt.Fprintln(os.Stderr, "attacklog:", err)
		os.Exit(1)
	}
}

// run narrates the campaign for one exploit id to w; it is the whole
// command behind the argument parsing, so the golden tests drive it
// directly.
func run(w io.Writer, id string) error {
	scope := 1
	expanded := false
	var ex redteam.Exploit
	found := false
	for _, e := range redteam.AllExploits() {
		if e.Bugzilla == id {
			ex = e
			scope = e.NeedsStackScope
			expanded = e.NeedsExpandedCorpus
			found = true
		}
	}
	if !found {
		return fmt.Errorf("unknown exploit %q", id)
	}
	setup, err := redteam.NewSetup(expanded)
	if err != nil {
		return err
	}
	cv, err := setup.ClearView(scope)
	if err != nil {
		return err
	}
	label := func(pc uint32) string {
		var best string
		var bestAddr uint32
		for name, addr := range setup.App.Labels {
			if addr > pc {
				continue
			}
			// Deterministic winner: closest label, lexicographically first
			// among labels sharing an address (map order must not leak).
			if addr > bestAddr || best == "" || (addr == bestAddr && name < best) {
				bestAddr, best = addr, name
			}
		}
		return fmt.Sprintf("%s+%d", best, pc-bestAddr)
	}
	for i := 1; i <= 16; i++ {
		res := cv.Execute(redteam.AttackInput(setup.App, ex, 0))
		fmt.Fprintf(w, "pres %2d: %v exit=%d", i, res.Outcome, res.ExitCode)
		if res.Failure != nil {
			fmt.Fprintf(w, " at %s (%s)", label(res.Failure.PC), res.Failure.Monitor)
		}
		if res.Crash != nil {
			fmt.Fprintf(w, " crash at %s: %s", label(res.Crash.PC), res.Crash.Reason)
		}
		fmt.Fprintln(w)
		for _, fc := range cv.Cases() {
			fmt.Fprintf(w, "   case %s state=%v cands=%d repairs=%d current=%s unsucc=%d\n",
				label(fc.PC), fc.State, fc.Metrics.CandidateCount, fc.Metrics.RepairCount,
				fc.CurrentRepairID(), fc.Metrics.Unsuccessful)
			if fc.State == core.StateEvaluating || (fc.State == core.StatePatched && i < 20) {
				for _, e := range fc.Evaluator.Entries() {
					fmt.Fprintf(w, "      repair %-60s s=%d f=%d\n", e.Repair.ID(), e.Successes, e.Failures)
				}
			}
			if i == 1 {
				for _, c := range fc.Candidates {
					fmt.Fprintf(w, "      cand d%d %-60s\n", c.Depth, c.Inv)
				}
			}
			if fc.Correlations != nil {
				ids := make([]string, 0, len(fc.Correlations))
				for id := range fc.Correlations {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				for _, id := range ids {
					fmt.Fprintf(w, "      corr %-60s %v\n", id, fc.Correlations[id])
				}
			}
		}
		if res.Outcome == 0 && res.ExitCode == 0 { // normal exit
			break
		}
	}
	return nil
}
