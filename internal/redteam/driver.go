package redteam

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/daikon"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/vm"
	"repro/internal/webapp"
)

// Setup bundles a protected application ready for attack: the built app,
// the learned invariant database, and a ClearView factory.
type Setup struct {
	App *webapp.App
	DB  *daikon.DB

	// Obs, when set, is threaded into every ClearView the setup builds,
	// tracing each instance's pipeline stages into one shared registry.
	Obs *obs.Tracer
}

// NewSetup builds the application and learns the invariant database.
// expandedCorpus selects the §4.3.2 extended learning suite.
func NewSetup(expandedCorpus bool) (*Setup, error) {
	app, err := webapp.Build()
	if err != nil {
		return nil, err
	}
	corpus := LearningCorpus()
	if expandedCorpus {
		corpus = ExpandedCorpus()
	}
	db, _, err := core.Learn(app.Image, core.LearnConfig{Inputs: [][]byte{corpus}})
	if err != nil {
		return nil, err
	}
	return &Setup{App: app, DB: db}, nil
}

// ClearView builds a protected instance with the extended Red Team
// monitor configuration: the paper's three detectors (Memory Firewall +
// Heap Guard + Shadow Stack, §4.2.2) plus the arithmetic-fault and hang
// detectors the new failure classes need.
func (s *Setup) ClearView(stackScope int) (*core.ClearView, error) {
	return core.New(core.Config{
		Image:          s.App.Image,
		Invariants:     s.DB,
		StackScope:     stackScope,
		MemoryFirewall: true,
		HeapGuard:      true,
		ShadowStack:    true,
		FaultGuard:     true,
		HangGuard:      true,
		Obs:            s.Obs,
	})
}

// ReplayClearView builds a protected instance like ClearView but with the
// record/replay fast path enabled: failing presentations are recorded and
// candidate repairs are judged against the recording on a parallel farm,
// so a deterministic exploit converges in two presentations instead of
// 4+. workers 0 uses all CPUs.
func (s *Setup) ReplayClearView(stackScope, workers int) (*core.ClearView, error) {
	return core.New(core.Config{
		Image:          s.App.Image,
		Invariants:     s.DB,
		StackScope:     stackScope,
		MemoryFirewall: true,
		HeapGuard:      true,
		ShadowStack:    true,
		FaultGuard:     true,
		HangGuard:      true,
		Replay:         &core.ReplayConfig{Workers: workers},
	})
}

// RecordAttack captures one failing presentation of an exploit as a
// deterministic recording under the Red Team monitors — the artifact a
// community node would ship to the manager for offline patch evaluation.
func RecordAttack(s *Setup, ex Exploit, variant int) (*replay.Recording, vm.RunResult, error) {
	input := AttackInput(s.App, ex, variant)
	return replay.Record("redteam/"+ex.Bugzilla, s.App.Image, input, nil, replay.Options{})
}

// subsequentPages are the benign pages appended after each attack page:
// a presentation succeeds only if the application survives the attack AND
// continues to process subsequent inputs (§4.3.1).
func subsequentPages() []byte {
	eval := EvaluationPages()
	return Input(eval[0], eval[1])
}

// AttackInput assembles one presentation's input: the attack page followed
// by legitimate follow-on pages.
func AttackInput(app *webapp.App, ex Exploit, variant int) []byte {
	return Input(append([][]byte{ex.Build(app, variant)}, subsequentPages())...)
}

// AttackResult summarizes a single-exploit attack campaign.
type AttackResult struct {
	Bugzilla      string
	Blocked       bool // every pre-patch presentation was monitor-detected
	Patched       bool // a presentation survived under an adopted patch
	Presentations int  // presentations until the first surviving one
	Unsuccessful  int  // crashed or failing repair-evaluation runs
}

// RunSingleVariant presents the exploit repeatedly (§4.3.1) until the
// application survives or maxPresentations is exhausted. Each presentation
// waits for all ClearView actions from the previous one (our Execute is
// synchronous, so this is implicit).
func RunSingleVariant(cv *core.ClearView, app *webapp.App, ex Exploit, maxPresentations int) AttackResult {
	res := AttackResult{Bugzilla: ex.Bugzilla, Blocked: true}
	for i := 1; i <= maxPresentations; i++ {
		out := cv.Execute(AttackInput(app, ex, 0))
		switch {
		case out.Outcome == vm.OutcomeExit && out.ExitCode == 0:
			res.Patched = true
			res.Presentations = i
			res.Unsuccessful = countUnsuccessful(cv)
			return res
		case out.Outcome == vm.OutcomeCrash,
			out.Outcome == vm.OutcomeExit: // abnormal exit (nonzero status)
			// Crashes and abnormal exits only happen while a candidate
			// repair is being evaluated; the evaluator discards the
			// repair.
			res.Unsuccessful++
		default:
			// Monitor detected and terminated: blocked.
		}
	}
	res.Presentations = maxPresentations
	res.Unsuccessful = countUnsuccessful(cv)
	return res
}

// RunMultiVariant interleaves exploit variants (§4.3.4): the same defect
// attacked through different exploit bytes must yield the same patch after
// the same number of presentations.
func RunMultiVariant(cv *core.ClearView, app *webapp.App, ex Exploit, maxPresentations int) AttackResult {
	res := AttackResult{Bugzilla: ex.Bugzilla, Blocked: true}
	for i := 1; i <= maxPresentations; i++ {
		variant := (i - 1) % ex.Variants
		out := cv.Execute(AttackInput(app, ex, variant))
		if out.Outcome == vm.OutcomeExit && out.ExitCode == 0 {
			res.Patched = true
			res.Presentations = i
			return res
		}
	}
	res.Presentations = maxPresentations
	return res
}

// RunSimultaneous interleaves presentations of several exploits targeting
// different defects (§4.3.5). ClearView keys every action on the failure
// location, so the campaigns must not interfere: each exploit is patched
// after the same cumulative number of its own presentations.
func RunSimultaneous(cv *core.ClearView, app *webapp.App, exs []Exploit, maxRounds int) map[string]AttackResult {
	results := make(map[string]AttackResult, len(exs))
	counts := make(map[string]int, len(exs))
	patched := make(map[string]bool, len(exs))
	for round := 0; round < maxRounds; round++ {
		for _, ex := range exs {
			if patched[ex.Bugzilla] {
				continue
			}
			counts[ex.Bugzilla]++
			out := cv.Execute(AttackInput(app, ex, 0))
			if out.Outcome == vm.OutcomeExit && out.ExitCode == 0 {
				patched[ex.Bugzilla] = true
				results[ex.Bugzilla] = AttackResult{
					Bugzilla: ex.Bugzilla, Blocked: true, Patched: true,
					Presentations: counts[ex.Bugzilla],
				}
			}
		}
	}
	for _, ex := range exs {
		if !patched[ex.Bugzilla] {
			results[ex.Bugzilla] = AttackResult{
				Bugzilla: ex.Bugzilla, Presentations: counts[ex.Bugzilla],
			}
		}
	}
	return results
}

func countUnsuccessful(cv *core.ClearView) int {
	n := 0
	for _, fc := range cv.Cases() {
		n += fc.Metrics.Unsuccessful
	}
	return n
}

// Autoimmune verifies §4.3.6: with all adopted patches in place, every
// evaluation page must render bit-identically to the unprotected
// application. Returns the indices of pages that differ.
func Autoimmune(cv *core.ClearView, app *webapp.App) ([]int, error) {
	var diffs []int
	for i, page := range EvaluationPages() {
		protected := cv.Execute(page)
		if protected.Outcome != vm.OutcomeExit {
			diffs = append(diffs, i)
			continue
		}
		bare, err := vm.New(vm.Config{Image: app.Image, Input: page})
		if err != nil {
			return nil, err
		}
		want := bare.Run()
		if want.Outcome != vm.OutcomeExit {
			return nil, fmt.Errorf("evaluation page %d fails on the bare application: %v", i, want.Outcome)
		}
		if !bytes.Equal(protected.Output, want.Output) {
			diffs = append(diffs, i)
		}
	}
	return diffs, nil
}

// FalsePositives verifies §4.3.7: legitimate pages must never trigger the
// patch generation mechanism. Returns the number of patches generated (0
// on success) and the number of failure cases opened.
func FalsePositives(cv *core.ClearView) (patches, cases int) {
	for _, page := range EvaluationPages() {
		cv.Execute(page)
	}
	return cv.PatchesGenerated, len(cv.Cases())
}
