package repro_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/monitor"
)

// TestPackageTourCoversEveryPackage pins the hand-maintained package
// documentation to reality: every package under internal/ must appear in
// README.md's package tour and in doc.go's package list, so the next
// undocumented package fails tier-1 instead of silently drifting.
func TestPackageTourCoversEveryPackage(t *testing.T) {
	entries, err := os.ReadDir("internal")
	if err != nil {
		t.Fatal(err)
	}
	docs := map[string]string{}
	for _, file := range []string{"README.md", "doc.go"} {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		docs[file] = string(raw)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkg := "internal/" + e.Name()
		for file, content := range docs {
			if !strings.Contains(content, pkg) {
				t.Errorf("%s does not mention %s — update the package tour", file, pkg)
			}
		}
	}
	// And the architecture map, once per stage-owning package (the map is
	// organized by pipeline stage, so it must at least name each package).
	arch, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatalf("ARCHITECTURE.md missing: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() && !strings.Contains(string(arch), "internal/"+e.Name()) {
			t.Errorf("ARCHITECTURE.md does not mention internal/%s", e.Name())
		}
	}
}

// monitorNames extracts every detector name the monitor package declares
// (the string each plugin's Name method returns).
func monitorNames(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("internal", "monitor", "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	nameMethod := regexp.MustCompile(`func \(\w+ \*\w+\) Name\(\) string \{ return "(\w+)" \}`)
	var names []string
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range nameMethod.FindAllStringSubmatch(string(raw), -1) {
			names = append(names, m[1])
		}
	}
	if len(names) < 5 {
		t.Fatalf("found only %d detector Name methods in internal/monitor — extraction broken?", len(names))
	}
	// The extracted set must match the package's exported canonical list
	// (monitor.DetectorNames) — the one the community sanity checks build
	// their allowlist from — so a new detector cannot be deployable yet
	// rejected as "unknown monitor" by omission.
	canonical := map[string]bool{}
	for _, n := range monitor.DetectorNames {
		canonical[n] = true
	}
	for _, n := range names {
		if !canonical[n] {
			t.Errorf("detector %s has a Name method but is missing from monitor.DetectorNames", n)
		}
	}
	if len(canonical) != len(names) {
		t.Errorf("monitor.DetectorNames has %d entries, Name methods declare %d", len(canonical), len(names))
	}
	return names
}

// TestFailureClassMatrixCoversEveryDetector pins the failure-class matrix
// to the code: every detector the monitor package declares must appear in
// ARCHITECTURE.md's "Failure-class matrix" section and in README.md, so a
// new detector cannot land without a documented failure class, invariant
// family, repair strategy, and reproducing test.
func TestFailureClassMatrixCoversEveryDetector(t *testing.T) {
	arch, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	_, matrix, found := strings.Cut(string(arch), "## Failure-class matrix")
	if !found {
		t.Fatal("ARCHITECTURE.md has no Failure-class matrix section")
	}
	if next := strings.Index(matrix, "\n## "); next >= 0 {
		matrix = matrix[:next]
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range monitorNames(t) {
		if !strings.Contains(matrix, name) {
			t.Errorf("detector %s missing from ARCHITECTURE.md's failure-class matrix", name)
		}
		if !strings.Contains(string(readme), name) {
			t.Errorf("detector %s missing from README.md", name)
		}
	}
}
