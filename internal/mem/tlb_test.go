package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

// oracleMemory is the original map-backed sparse memory, kept verbatim as
// a test oracle: the flat page table + TLB implementation must be
// observationally identical to it under any interleaving of operations.
type oracleMemory struct {
	pages map[uint32][]byte
	cow   map[uint32]struct{}
}

func newOracle() *oracleMemory {
	return &oracleMemory{pages: make(map[uint32][]byte)}
}

func (m *oracleMemory) Map(addr, size uint32) {
	if size == 0 {
		return
	}
	first := addr / PageSize
	last := (addr + size - 1) / PageSize
	for p := first; ; p++ {
		if _, ok := m.pages[p]; !ok {
			m.pages[p] = make([]byte, PageSize)
		}
		if p == last {
			break
		}
	}
}

func (m *oracleMemory) Clone() *oracleMemory {
	c := &oracleMemory{
		pages: make(map[uint32][]byte, len(m.pages)),
		cow:   make(map[uint32]struct{}, len(m.pages)),
	}
	if m.cow == nil {
		m.cow = make(map[uint32]struct{}, len(m.pages))
	}
	for pn, p := range m.pages {
		c.pages[pn] = p
		c.cow[pn] = struct{}{}
		m.cow[pn] = struct{}{}
	}
	return c
}

func (m *oracleMemory) page(addr uint32, write bool) ([]byte, error) {
	pn := addr / PageSize
	p, ok := m.pages[pn]
	if !ok {
		return nil, &Fault{Addr: addr, Write: write}
	}
	if write && m.cow != nil {
		if _, shared := m.cow[pn]; shared {
			dup := make([]byte, PageSize)
			copy(dup, p)
			m.pages[pn] = dup
			delete(m.cow, pn)
			p = dup
		}
	}
	return p, nil
}

func (m *oracleMemory) Read8(addr uint32) (byte, error) {
	p, err := m.page(addr, false)
	if err != nil {
		return 0, err
	}
	return p[addr%PageSize], nil
}

func (m *oracleMemory) Write8(addr uint32, v byte) error {
	p, err := m.page(addr, true)
	if err != nil {
		return err
	}
	p[addr%PageSize] = v
	return nil
}

func (m *oracleMemory) Read32(addr uint32) (uint32, error) {
	var v uint32
	for i := uint32(0); i < 4; i++ {
		b, err := m.Read8(addr + i)
		if err != nil {
			return 0, err
		}
		v |= uint32(b) << (8 * i)
	}
	return v, nil
}

func (m *oracleMemory) Write32(addr uint32, v uint32) error {
	for i := uint32(0); i < 4; i++ {
		if err := m.Write8(addr+i, byte(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

func (m *oracleMemory) ReadBytes(addr, n uint32) ([]byte, error) {
	out := make([]byte, n)
	for i := uint32(0); i < n; i++ {
		b, err := m.Read8(addr + i)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}

func (m *oracleMemory) WriteBytes(addr uint32, b []byte) error {
	for i, v := range b {
		if err := m.Write8(addr+uint32(i), v); err != nil {
			return err
		}
	}
	return nil
}

// pair binds one Memory under test to its oracle twin; every operation is
// applied to both and the observable outcomes compared.
type pair struct {
	m *Memory
	o *oracleMemory
}

// TestPropertyAgainstOracle drives randomized interleavings of Map,
// reads, writes, bulk copies, Clone (on both sides of existing clones),
// and MarshalBinary/UnmarshalBinary round trips against the map-backed
// oracle. Any stale-TLB bug — a translation surviving a Clone, a COW
// break, or an Unmarshal — diverges the observable bytes and fails here.
func TestPropertyAgainstOracle(t *testing.T) {
	const (
		base = 0x10000
		span = 8 * PageSize
	)
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		root := pair{m: New(), o: newOracle()}
		root.m.Map(base, span)
		root.o.Map(base, span)
		pairs := []pair{root}

		randAddr := func() uint32 {
			// Mostly in-bounds, occasionally out of bounds to compare
			// fault behavior, and biased toward page edges.
			switch rng.Intn(8) {
			case 0:
				return base + uint32(rng.Intn(span/PageSize))*PageSize - 2 + uint32(rng.Intn(4))
			case 1:
				return uint32(rng.Uint64()) // anywhere, usually unmapped
			default:
				return base + uint32(rng.Intn(span-8))
			}
		}

		for op := 0; op < 400; op++ {
			p := pairs[rng.Intn(len(pairs))]
			switch rng.Intn(10) {
			case 0: // clone a random pair
				if len(pairs) < 6 {
					pairs = append(pairs, pair{m: p.m.Clone(), o: p.o.Clone()})
				}
			case 1: // marshal round trip into a fresh pair
				raw, err := p.m.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				var back Memory
				if err := back.UnmarshalBinary(raw); err != nil {
					t.Fatal(err)
				}
				// The oracle twin of the round-tripped memory is a clone
				// of the oracle with COW immediately defeated by copying
				// every page (UnmarshalBinary owns all pages).
				ob := newOracle()
				for pn, page := range p.o.pages {
					ob.pages[pn] = append([]byte(nil), page...)
				}
				if len(pairs) < 6 {
					pairs = append(pairs, pair{m: &back, o: ob})
				}
			case 2: // unmarshal INTO an existing memory (stale-TLB hazard)
				src := pairs[rng.Intn(len(pairs))]
				raw, err := src.m.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				// Warm the target's TLB first so a missing flush shows.
				_, _ = p.m.Read8(base + uint32(rng.Intn(span)))
				if err := p.m.UnmarshalBinary(raw); err != nil {
					t.Fatal(err)
				}
				// src may be p itself: build the replacement map before
				// installing it.
				fresh := make(map[uint32][]byte, len(src.o.pages))
				for pn, page := range src.o.pages {
					fresh[pn] = append([]byte(nil), page...)
				}
				p.o.pages = fresh
				p.o.cow = nil
			case 3: // bulk write crossing pages
				n := rng.Intn(2*PageSize + 3)
				buf := make([]byte, n)
				rng.Read(buf)
				addr := randAddr()
				em := p.m.WriteBytes(addr, buf)
				eo := p.o.WriteBytes(addr, buf)
				compareErr(t, "WriteBytes", addr, em, eo)
			case 4: // bulk read crossing pages
				n := uint32(rng.Intn(2*PageSize + 3))
				addr := randAddr()
				bm, em := p.m.ReadBytes(addr, n)
				bo, eo := p.o.ReadBytes(addr, n)
				compareErr(t, "ReadBytes", addr, em, eo)
				if em == nil && !bytes.Equal(bm, bo) {
					t.Fatalf("ReadBytes(%#x, %d) diverged", addr, n)
				}
			case 5, 6: // word write
				addr := randAddr()
				val := rng.Uint32()
				compareErr(t, "Write32", addr, p.m.Write32(addr, val), p.o.Write32(addr, val))
			case 7, 8: // word read
				addr := randAddr()
				vm, em := p.m.Read32(addr)
				vo, eo := p.o.Read32(addr)
				compareErr(t, "Read32", addr, em, eo)
				if em == nil && vm != vo {
					t.Fatalf("Read32(%#x) = %#x, oracle %#x", addr, vm, vo)
				}
			case 9: // byte write
				addr := randAddr()
				val := byte(rng.Intn(256))
				compareErr(t, "Write8", addr, p.m.Write8(addr, val), p.o.Write8(addr, val))
			}
		}

		// Final sweep: every pair's full observable contents must agree.
		for i, p := range pairs {
			got, err1 := p.m.ReadBytes(base, span)
			want, err2 := p.o.ReadBytes(base, span)
			if err1 != nil || err2 != nil {
				t.Fatalf("final sweep errs: %v, %v", err1, err2)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("trial %d pair %d: contents diverged from oracle", trial, i)
			}
		}
	}
}

func compareErr(t *testing.T, op string, addr uint32, em, eo error) {
	t.Helper()
	if (em == nil) != (eo == nil) {
		t.Fatalf("%s(%#x): impl err %v, oracle err %v", op, addr, em, eo)
	}
	if em == nil {
		return
	}
	fm, okm := em.(*Fault)
	fo, oko := eo.(*Fault)
	if !okm || !oko || fm.Addr != fo.Addr || fm.Write != fo.Write {
		t.Fatalf("%s(%#x): fault detail diverged: %v vs %v", op, addr, em, eo)
	}
}

// TestTLBStaleOnClone is the targeted regression for the headline TLB
// hazard: a writable translation cached before Clone must not let the
// original write storage it now shares with the clone.
func TestTLBStaleOnClone(t *testing.T) {
	m := New()
	m.Map(0x4000, PageSize)
	if err := m.Write32(0x4000, 0x1111_1111); err != nil { // caches a writable translation
		t.Fatal(err)
	}
	c := m.Clone()
	if err := m.Write32(0x4000, 0x2222_2222); err != nil { // must COW-break, not reuse the TLB entry
		t.Fatal(err)
	}
	got, err := c.Read32(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x1111_1111 {
		t.Fatalf("clone sees %#x: original wrote shared storage through a stale TLB entry", got)
	}
	if m.CowBreaks() != 1 {
		t.Fatalf("cowBreaks = %d, want 1", m.CowBreaks())
	}
}

// TestTLBStaleOnCowBreak: a read-only translation cached while the page
// was shared must be refreshed when this side privatizes the page —
// otherwise later reads observe the abandoned shared storage.
func TestTLBStaleOnCowBreak(t *testing.T) {
	m := New()
	m.Map(0x8000, PageSize)
	c := m.Clone()
	if _, err := m.Read8(0x8000); err != nil { // cache read-only translation of shared page
		t.Fatal(err)
	}
	if err := m.Write8(0x8000, 0xAB); err != nil { // privatizes; must update the translation
		t.Fatal(err)
	}
	got, err := m.Read8(0x8000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xAB {
		t.Fatalf("read after COW break = %#x, want 0xAB (stale read translation)", got)
	}
	if got, _ := c.Read8(0x8000); got != 0 {
		t.Fatalf("clone corrupted: %#x", got)
	}
}

// TestTLBStaleOnUnmarshal: UnmarshalBinary replaces the whole page table;
// translations cached against the old pages must not survive.
func TestTLBStaleOnUnmarshal(t *testing.T) {
	donor := New()
	donor.Map(0x4000, PageSize)
	if err := donor.Write32(0x4000, 0xCAFE_F00D); err != nil {
		t.Fatal(err)
	}
	raw, err := donor.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	m := New()
	m.Map(0x4000, PageSize)
	if err := m.Write32(0x4000, 0x0BAD_0BAD); err != nil { // caches writable translation
		t.Fatal(err)
	}
	if err := m.UnmarshalBinary(raw); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read32(0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xCAFE_F00D {
		t.Fatalf("read after Unmarshal = %#x, want donor contents (stale TLB)", got)
	}
	// And writes must not land in the pre-Unmarshal storage either.
	if err := m.Write32(0x4000, 0x5555_5555); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Read32(0x4000); got != 0x5555_5555 {
		t.Fatalf("write after Unmarshal lost: %#x", got)
	}
}

// TestReadWriteRunContracts covers the zero-copy page-run API the
// interpreter's COPYB loop uses.
func TestReadWriteRunContracts(t *testing.T) {
	m := New()
	m.Map(0x1000, 2*PageSize)
	if err := m.WriteBytes(0x1FF0, []byte("0123456789abcdef0123456789abcdef")); err != nil {
		t.Fatal(err)
	}
	run, err := m.ReadRun(0x1FF0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if string(run) != "0123456789abcdef" {
		t.Fatalf("ReadRun = %q", run)
	}
	w, err := m.WriteRun(0x2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	copy(w, "WXYZ")
	got, err := m.ReadBytes(0x2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "WXYZ" {
		t.Fatalf("WriteRun not visible: %q", got)
	}
	if _, err := m.ReadRun(0x9000_0000, 8); err == nil {
		t.Fatal("ReadRun of unmapped page succeeded")
	}
	if _, err := m.WriteRun(0x9000_0000, 8); err == nil {
		t.Fatal("WriteRun of unmapped page succeeded")
	}
	// WriteRun on a shared page must privatize it.
	c := m.Clone()
	w, err = m.WriteRun(0x1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	copy(w, "COWb")
	if got, _ := c.ReadBytes(0x1000, 4); string(got) == "COWb" {
		t.Fatal("WriteRun wrote through shared storage")
	}
}

// TestMarshalOrderDeterministic: the wire format must be byte-identical
// across equivalent memories (fuzz fingerprints depend on it) — the
// two-level table provides ascending page order without a sort.
func TestMarshalOrderDeterministic(t *testing.T) {
	build := func(order []uint32) []byte {
		m := New()
		for _, a := range order {
			m.Map(a, PageSize)
			if err := m.Write8(a, byte(a>>16)); err != nil {
				t.Fatal(err)
			}
		}
		raw, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	a := build([]uint32{0x1000, 0x2000_0000, 0x3000_0000, 0x5000})
	b := build([]uint32{0x3000_0000, 0x5000, 0x1000, 0x2000_0000})
	if !bytes.Equal(a, b) {
		t.Fatal("marshal order depends on mapping order")
	}
}

// TestUnmarshalRejectsOutOfRangePage: the flat table indexes by page
// number, so a hostile record beyond the 20-bit page space must be
// rejected, not indexed.
func TestUnmarshalRejectsOutOfRangePage(t *testing.T) {
	m := New()
	m.Map(0, PageSize)
	raw, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Patch the page index of record 0 to an out-of-range value.
	copy(raw[4:8], []byte{0xFF, 0xFF, 0xFF, 0xFF})
	if err := new(Memory).UnmarshalBinary(raw); err == nil {
		t.Fatal("out-of-range page index accepted")
	}
}

// TestCloneTLBIndependence: a clone starts with an empty TLB and never
// shares translations with its parent.
func TestCloneTLBIndependence(t *testing.T) {
	m := New()
	m.Map(0, PageSize)
	for i := 0; i < 4; i++ {
		clones := make([]*Memory, 4)
		for j := range clones {
			clones[j] = m.Clone()
		}
		for j, c := range clones {
			if err := c.Write8(uint32(j), byte(0x10+j)); err != nil {
				t.Fatal(err)
			}
		}
		for j, c := range clones {
			got, err := c.Read8(uint32(j))
			if err != nil || got != byte(0x10+j) {
				t.Fatalf("clone %d: %v %#x", j, err, got)
			}
			for k := range clones {
				if k == j {
					continue
				}
				if got, _ := clones[k].Read8(uint32(j)); got == byte(0x10+j) && k < j {
					t.Fatalf("clone %d write leaked into clone %d", j, k)
				}
			}
		}
	}
}
