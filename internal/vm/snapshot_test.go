package vm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/mem"
)

// snapshotProgram is a workload that exercises every piece of state a
// snapshot must carry: registers and flags (loop), heap allocator state
// (alloc/free/realloc churn), memory contents, the input cursor, and the
// display. It reads input bytes, folds them into a heap-resident
// accumulator, and writes a digest to the display.
func snapshotProgram(t testing.TB) *image.Image {
	im, _ := func() (*image.Image, map[string]uint32) {
		a := asm.New(0x1000)
		a.Label("main")
		// EBX := heap block (accumulator)
		a.MovRI(isa.EAX, 64)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.EBX, isa.EAX)
		a.MovRI(isa.ECX, 0)
		a.Store(asm.M(isa.EBX, 0), isa.ECX)
		// scratch := heap block, freed each round (recycler churn)
		a.Label("round")
		a.Sys(isa.SysInAvail)
		a.CmpRI(isa.EAX, 0)
		a.Je("done")
		a.MovRI(isa.EAX, 16)
		a.Sys(isa.SysAlloc)
		a.MovRR(isa.ESI, isa.EAX)
		// read one input byte into the scratch block
		a.MovRR(isa.EAX, isa.ESI)
		a.MovRI(isa.ECX, 1)
		a.Sys(isa.SysRead)
		a.LoadB(isa.EDX, asm.M(isa.ESI, 0))
		// fold: acc = acc*31 + byte
		a.Load(isa.EAX, asm.M(isa.EBX, 0))
		a.MulRI(isa.EAX, 31)
		a.AddRR(isa.EAX, isa.EDX)
		a.Store(asm.M(isa.EBX, 0), isa.EAX)
		// write the low byte of the accumulator to the display
		a.StoreB(asm.M(isa.EBX, 4), isa.EAX)
		a.Lea(isa.EAX, asm.M(isa.EBX, 4))
		a.MovRI(isa.ECX, 1)
		a.Sys(isa.SysWrite)
		// free the scratch block and loop
		a.MovRR(isa.EAX, isa.ESI)
		a.Sys(isa.SysFree)
		a.Jmp("round")
		a.Label("done")
		a.MovRI(isa.EAX, 0)
		a.Sys(isa.SysExit)
		code, labels, err := a.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		return &image.Image{Base: 0x1000, Entry: labels["main"], Code: code}, labels
	}()
	return im
}

func requireIdentical(t *testing.T, want, got RunResult, label string) {
	t.Helper()
	if got.Outcome != want.Outcome || got.ExitCode != want.ExitCode {
		t.Fatalf("%s: outcome (%v,%d) != (%v,%d)", label, got.Outcome, got.ExitCode, want.Outcome, want.ExitCode)
	}
	if !bytes.Equal(got.Output, want.Output) {
		t.Fatalf("%s: display diverged: %x vs %x", label, got.Output, want.Output)
	}
	if got.Steps != want.Steps {
		t.Fatalf("%s: steps %d != %d", label, got.Steps, want.Steps)
	}
}

// TestSnapshotRestoreBitIdentical is the headline property: a machine
// restored from a snapshot re-executes to a bit-identical RunResult —
// same outcome, exit code, display, step count, final registers, flags,
// and heap statistics — whether the snapshot was taken at step 0 or
// mid-run.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	im := snapshotProgram(t)
	input := []byte("the quick brown fox jumps over the lazy dog")

	// Reference run, capturing periodic snapshots along the way.
	var snaps []*Snapshot
	ref, err := New(Config{
		Image: im, Input: input,
		SnapshotInterval: 37, // deliberately unaligned with the loop period
		SnapshotSink:     func(s *Snapshot) { snaps = append(snaps, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Run()
	if want.Outcome != OutcomeExit {
		t.Fatalf("reference run: %+v", want)
	}
	if len(snaps) < 3 {
		t.Fatalf("expected several periodic snapshots, got %d", len(snaps))
	}
	if snaps[0].Steps != 0 {
		t.Fatalf("first snapshot at step %d, want 0", snaps[0].Steps)
	}
	wantAllocs, wantFrees := ref.Heap.Stats()

	for i, s := range snaps {
		replayed, err := New(Config{Image: im, Input: input})
		if err != nil {
			t.Fatal(err)
		}
		replayed.Restore(s)
		got := replayed.Run()
		requireIdentical(t, want, got, fmt.Sprintf("snapshot %d (step %d)", i, s.Steps))
		if replayed.CPU != ref.CPU {
			t.Fatalf("snapshot %d: final CPU state diverged:\n%+v\n%+v", i, replayed.CPU, ref.CPU)
		}
		a, f := replayed.Heap.Stats()
		if a != wantAllocs || f != wantFrees {
			t.Fatalf("snapshot %d: heap stats (%d,%d) != (%d,%d)", i, a, f, wantAllocs, wantFrees)
		}
	}
}

// TestSnapshotIsolation verifies that running a restored machine never
// mutates the snapshot or the original machine: the same snapshot replays
// identically any number of times, interleaved.
func TestSnapshotIsolation(t *testing.T) {
	im := snapshotProgram(t)
	input := []byte("snapshots must be immutable under replay")

	var snaps []*Snapshot
	ref, err := New(Config{
		Image: im, Input: input,
		SnapshotInterval: 101,
		SnapshotSink:     func(s *Snapshot) { snaps = append(snaps, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Run()
	mid := snaps[len(snaps)/2]
	before := mid.Mem.Clone()                                     // reference copy of the snapshot's memory
	heapBefore := mem.NewHeapFromState(mid.Mem, mid.Heap).State() // deep copy of the heap state

	var results []RunResult
	for i := 0; i < 4; i++ {
		m, err := New(Config{Image: im, Input: input})
		if err != nil {
			t.Fatal(err)
		}
		m.Restore(mid)
		results = append(results, m.Run())
	}
	for i, got := range results {
		requireIdentical(t, want, got, fmt.Sprintf("replay %d", i))
	}
	// The snapshot's heap state must be untouched by the replays.
	if !reflect.DeepEqual(mid.Heap, heapBefore) {
		t.Fatalf("snapshot heap state mutated by replays:\n%+v\n%+v", mid.Heap, heapBefore)
	}
	// Spot-check the snapshot memory against the pre-replay copy.
	for _, addr := range []uint32{0x1000, 0x2000_0000, 0x2000_0010} {
		if !mid.Mem.Mapped(addr) {
			continue
		}
		w, err1 := before.Read32(addr)
		g, err2 := mid.Mem.Read32(addr)
		if err1 != nil || err2 != nil || w != g {
			t.Fatalf("snapshot memory mutated at %#x: %#x -> %#x", addr, w, g)
		}
	}
}

// TestSnapshotGobRoundTrip ships a snapshot through gob — the recording
// wire format — and replays from the deserialized copy.
func TestSnapshotGobRoundTrip(t *testing.T) {
	im := snapshotProgram(t)
	input := []byte("gob all the way down")

	var snaps []*Snapshot
	ref, err := New(Config{
		Image: im, Input: input,
		SnapshotInterval: 53,
		SnapshotSink:     func(s *Snapshot) { snaps = append(snaps, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Run()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snaps[len(snaps)-1]); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}

	m, err := New(Config{Image: im, Input: input})
	if err != nil {
		t.Fatal(err)
	}
	m.Restore(&back)
	requireIdentical(t, want, m.Run(), "gob round trip")
}

// TestRestoreUnderDifferentPatches restores one snapshot under two patch
// sets and checks the executions diverge as the patches dictate — the
// replay-farm use case in miniature.
func TestRestoreUnderDifferentPatches(t *testing.T) {
	im := snapshotProgram(t)
	input := []byte("abc")

	var snaps []*Snapshot
	ref, err := New(Config{
		Image: im, Input: input,
		SnapshotInterval: 10,
		SnapshotSink:     func(s *Snapshot) { snaps = append(snaps, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Run()
	start := snaps[0]

	// Unpatched replay reproduces the run.
	plain, err := New(Config{Image: im, Input: input})
	if err != nil {
		t.Fatal(err)
	}
	plain.Restore(start)
	requireIdentical(t, want, plain.Run(), "unpatched")

	// A patch at the entry instruction diverts the run entirely.
	patched, err := New(Config{Image: im, Input: input})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	err = patched.ApplyPatch(&Patch{
		ID:   "test/abort",
		Addr: im.Entry,
		Prio: PrioRepair,
		Hook: func(ctx *Ctx) error {
			fired++
			return &Failure{PC: ctx.PC, Monitor: "test", Kind: "forced"}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	patched.Restore(start)
	got := patched.Run()
	if got.Outcome != OutcomeFailure || fired != 1 {
		t.Fatalf("patched replay: %+v (fired %d)", got, fired)
	}
}
