package community

import (
	"testing"

	"repro/internal/core"
	"repro/internal/redteam"
	"repro/internal/vm"
	"repro/internal/webapp"
)

// TestManagerReplayFastPath: a recording node ships its failing run to the
// manager, whose replay fast path completes checking and candidate
// ranking offline — so the victim is protected after two presentations
// (detection + one surviving run), with no live evaluation of losing
// candidates anywhere in the community.
func TestManagerReplayFastPath(t *testing.T) {
	app := webapp.MustBuild()
	conf := redTeamManagerConfig(t, app)
	conf.ReplayWorkers = -1 // GOMAXPROCS
	m, nodes := startManager(t, conf, []string{"victim"})
	victim := nodes[0]
	victim.RecordFailures = true
	defer victim.Close()

	ex := exploitByID(t, "290162")
	attack := redteam.AttackInput(app, ex, 0)

	// Presentation 1: detection. The node's report opens the case, its
	// recording upload triggers the manager's fast path, and the reply to
	// the upload already re-patches the node.
	res, err := victim.RunOnce(attack)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != vm.OutcomeFailure {
		t.Fatalf("presentation 1: %+v", res)
	}
	if m.RecordingCount() != 1 {
		t.Fatalf("manager holds %d recordings, want 1", m.RecordingCount())
	}
	if m.ReplayRuns() == 0 {
		t.Fatal("manager fast path ran no replays")
	}
	site := app.Labels["site_290162"]
	if st := m.CaseStates()[site]; st != core.StateEvaluating {
		t.Fatalf("after presentation 1 the case is %v, want evaluating", st)
	}

	// Presentation 2: the farm-picked repair survives live and is adopted
	// community-wide.
	res, err = victim.RunOnce(attack)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != vm.OutcomeExit || res.ExitCode != 0 {
		t.Fatalf("presentation 2: %+v", res)
	}
	if st := m.CaseStates()[site]; st != core.StatePatched {
		t.Fatalf("after presentation 2 the case is %v, want patched", st)
	}

	// A fresh member joining now is protected before ever seeing the
	// attack (§3's community benefit, reached in two presentations).
	nodeSide, mgrSide := Pipe()
	go func() { _ = m.Serve(mgrSide) }()
	fresh := NewNode("fresh", app.Image, nodeSide)
	if err := fresh.Connect(); err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	res, err = fresh.RunOnce(attack)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != vm.OutcomeExit || res.ExitCode != 0 {
		t.Fatalf("fresh member not protected: %+v", res)
	}
}

// TestRecordingUploadWithoutReplayWorkers: recordings are retained even
// when the fast path is disabled, and the pipeline degrades to the
// paper's live behaviour.
func TestRecordingUploadWithoutReplayWorkers(t *testing.T) {
	app := webapp.MustBuild()
	m, nodes := startManager(t, redTeamManagerConfig(t, app), []string{"victim"})
	victim := nodes[0]
	victim.RecordFailures = true
	defer victim.Close()

	ex := exploitByID(t, "290162")
	attack := redteam.AttackInput(app, ex, 0)
	patched := false
	for i := 0; i < 10 && !patched; i++ {
		res, err := victim.RunOnce(attack)
		if err != nil {
			t.Fatal(err)
		}
		patched = res.Outcome == vm.OutcomeExit && res.ExitCode == 0
	}
	if !patched {
		t.Fatal("live pipeline never patched")
	}
	if m.RecordingCount() == 0 {
		t.Fatal("recordings not retained")
	}
	if m.ReplayRuns() != 0 {
		t.Fatalf("fast path ran %d replays while disabled", m.ReplayRuns())
	}
}
