package redteam

import (
	"testing"

	"repro/internal/core"
	"repro/internal/daikon"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/webapp"
)

// TestAblationDupElimShrinksDatabase: duplicate-variable elimination
// (§2.2.4) must strictly reduce both trace volume and inferred invariants,
// without losing any exploit's repairability.
func TestAblationDupElimShrinksDatabase(t *testing.T) {
	app := webapp.MustBuild()
	corpus := LearningCorpus()
	learn := func(disable bool) (int, uint64) {
		eng := daikon.NewEngine()
		rec := trace.NewRecorder(eng)
		rec.DisableDupElim = disable
		machine, err := vm.New(vm.Config{Image: app.Image, Input: corpus, Plugins: []vm.Plugin{rec}})
		if err != nil {
			t.Fatal(err)
		}
		if res := machine.Run(); res.Outcome != vm.OutcomeExit {
			t.Fatal(res.Outcome)
		}
		rec.CommitRun()
		return eng.Finalize(daikon.Options{}).Len(), rec.Observations()
	}
	withElim, obsWith := learn(false)
	without, obsWithout := learn(true)
	if withElim >= without {
		t.Errorf("dup elimination did not shrink invariants: %d vs %d", withElim, without)
	}
	if obsWith >= obsWithout {
		t.Errorf("dup elimination did not shrink trace: %d vs %d", obsWith, obsWithout)
	}
}

// TestAblationPointerHeuristicShrinksDatabase: disabling the pointer
// heuristic (§2.2.4) must inflate the database with bound invariants over
// pointer variables.
func TestAblationPointerHeuristicShrinksDatabase(t *testing.T) {
	app := webapp.MustBuild()
	corpus := LearningCorpus()
	with, _, err := core.Learn(app.Image, core.LearnConfig{Inputs: [][]byte{corpus}})
	if err != nil {
		t.Fatal(err)
	}
	without, _, err := core.Learn(app.Image, core.LearnConfig{
		Inputs:  [][]byte{corpus},
		Options: daikon.Options{DisablePointerHeuristic: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if with.Len() >= without.Len() {
		t.Errorf("pointer heuristic did not shrink DB: %d vs %d", with.Len(), without.Len())
	}
}

// TestAblationSameBlockStillRepairs: lifting the same-block restriction
// (§2.4.1) widens the candidate set but must not change the repair outcome
// for the exploits ("in practice this optimization did not remove any
// useful repairs").
func TestAblationSameBlockStillRepairs(t *testing.T) {
	setup := getSetup(t, false)
	for _, id := range []string{"290162", "296134", "div-zero", "unaligned"} {
		ex := exploitByID(t, id)
		cv, err := core.New(core.Config{
			Image:      setup.App.Image,
			Invariants: setup.DB,
			StackScope: 1, MemoryFirewall: true, HeapGuard: true, ShadowStack: true,
			FaultGuard: true, HangGuard: true,
			DisableSameBlockRestriction: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := RunSingleVariant(cv, setup.App, ex, 24)
		if !res.Patched {
			t.Errorf("%s: unrestricted candidate selection broke the repair", id)
		}
	}
}

// TestAblationReverseOrderStillRepairs: the §2.6 ordering affects which
// repair is evaluated first, never whether a working repair is eventually
// found.
func TestAblationReverseOrderStillRepairs(t *testing.T) {
	setup := getSetup(t, false)
	for _, id := range []string{"269095", "290162", "295854", "div-zero", "unaligned", "hang-loop"} {
		ex := exploitByID(t, id)
		cv, err := core.New(core.Config{
			Image:      setup.App.Image,
			Invariants: setup.DB,
			StackScope: 1, MemoryFirewall: true, HeapGuard: true, ShadowStack: true,
			FaultGuard: true, HangGuard: true,
			ReverseRepairOrder: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := RunSingleVariant(cv, setup.App, ex, 24)
		if !res.Patched {
			t.Errorf("%s: reversed repair order never converged", id)
		}
	}
}

// TestHeapGuardRequiredForHeapExploits: without Heap Guard the two
// canary-detected exploits are neither detected nor repaired, matching
// §4.4.4 ("Heap Guard is required for the remaining two exploits").
func TestHeapGuardRequiredForHeapExploits(t *testing.T) {
	setup := getSetup(t, false)
	for _, id := range []string{"285595", "325403"} {
		ex := exploitByID(t, id)
		cv, err := core.New(core.Config{
			Image:          setup.App.Image,
			Invariants:     setup.DB,
			StackScope:     2,
			MemoryFirewall: true, HeapGuard: false, ShadowStack: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		out := cv.Execute(AttackInput(setup.App, ex, 0))
		if out.Outcome == vm.OutcomeFailure {
			t.Errorf("%s: detected without Heap Guard by %s", id, out.Failure.Monitor)
		}
		if len(cv.Cases()) != 0 {
			t.Errorf("%s: case opened without detection", id)
		}
	}
}

// TestMemoryFirewallSufficientForSeven: Memory Firewall and the Shadow
// Stack alone (no Heap Guard) suffice for the seven exploits ClearView
// patched during the exercise — the §4.4.4 observation that "the use of
// Heap Guard did not improve ClearView's performance in the Red Team
// exercise".
func TestMemoryFirewallSufficientForSeven(t *testing.T) {
	setup := getSetup(t, false)
	seven := []string{"269095", "290162", "295854", "296134", "311710", "312278", "320182"}
	for _, id := range seven {
		ex := exploitByID(t, id)
		cv, err := core.New(core.Config{
			Image:          setup.App.Image,
			Invariants:     setup.DB,
			StackScope:     1,
			MemoryFirewall: true, HeapGuard: false, ShadowStack: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := RunSingleVariant(cv, setup.App, ex, 24)
		if !res.Patched {
			t.Errorf("%s: not patched with Memory Firewall + Shadow Stack only", id)
		}
	}
}
