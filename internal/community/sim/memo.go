package sim

import (
	"repro/internal/community"
	"repro/internal/obs"
	"repro/internal/vm"
)

// execMemo deduplicates modeled-node executions. The VM is
// deterministic, so two nodes running the same input under the same
// directives produce the same result and the same report (up to the
// NodeID/Seq stamp) — one genuine run stands in for the whole cohort's.
// This is what turns a 100k-node round from 500k VM executions into a
// handful: the distinct (directives, input) pairs per round number in
// the tens, not the hundreds of thousands.
//
// A node is ineligible when its execution has node-local side effects:
// failure recorders seal recordings naming the node and sequence, and a
// learning assignment (LearnHi > LearnLo) feeds the node's own
// invariant engine. Those nodes always run genuinely.
type execMemo struct {
	entries map[string]*memoEntry
	hits    int
	misses  int
	genuine int
	cHits   *obs.Counter
	cMisses *obs.Counter
}

type memoEntry struct {
	res vm.RunResult
	rep community.RunReport // NodeID/Seq cleared; re-stamped per node
}

func newExecMemo(reg *obs.Registry) *execMemo {
	return &execMemo{
		entries: make(map[string]*memoEntry),
		cHits:   reg.Counter("sim.memo_hits"),
		cMisses: reg.Counter("sim.memo_misses"),
	}
}

// memoKey fingerprints the execution-relevant directives plus the
// input. The fingerprint masks Seq: the report echoes it but execution
// ignores it, so directives differing only by sequence number share an
// entry. DirectivesFingerprint is collision-free, so distinct directive
// sets never share an entry.
func memoKey(dir community.Directives, input []byte) string {
	return community.DirectivesFingerprint(dir) + "\x00" + string(input)
}

// run executes input on n — through the memo when the node is eligible,
// genuinely otherwise. The returned report is always stamped with n's
// identity and current directives sequence, exactly as n's own run
// would stamp it.
func (e *execMemo) run(n *community.Node, input []byte) (vm.RunResult, community.RunReport, []byte, error) {
	dir := n.Directives()
	if n.RecordFailures || dir.LearnHi > dir.LearnLo {
		e.genuine++
		return n.RunLocal(input)
	}
	key := memoKey(dir, input)
	if ent, hit := e.entries[key]; hit {
		e.hits++
		e.cHits.Inc()
		rep := ent.rep
		rep.NodeID = n.ID
		rep.Seq = dir.Seq
		return ent.res, rep, nil, nil
	}
	res, rep, raw, err := n.RunLocal(input)
	if err != nil {
		return res, rep, raw, err
	}
	e.misses++
	e.cMisses.Inc()
	ent := &memoEntry{res: res, rep: rep}
	ent.rep.NodeID = ""
	ent.rep.Seq = 0
	e.entries[key] = ent
	return res, rep, raw, nil
}
