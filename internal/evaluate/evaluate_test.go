package evaluate

import (
	"testing"
	"testing/quick"

	"repro/internal/daikon"
	"repro/internal/repair"
)

func mkRepairs(n int) []*repair.Repair {
	inv := &daikon.Invariant{Kind: daikon.KindOneOf, Var: daikon.VarID{PC: 0x100}, Values: []uint32{1}}
	out := make([]*repair.Repair, n)
	for i := range out {
		out[i] = &repair.Repair{
			Inv: inv, Strategy: repair.StratSetValue,
			Value: uint32(i), PC: 0x100,
		}
	}
	return out
}

func TestBestPrefersUntriedOverFailed(t *testing.T) {
	rs := mkRepairs(3)
	ev := New(rs, 1)
	first := ev.Best()
	if first.Repair != rs[0] {
		t.Fatalf("initial best = %v", first.Repair)
	}
	ev.RecordFailure(rs[0].ID())
	if ev.Best().Repair != rs[1] {
		t.Errorf("after failure, best = %v", ev.Best().Repair)
	}
}

func TestScoreFormula(t *testing.T) {
	e := &Entry{Successes: 3, Failures: 1}
	if got := e.Score(2); got != 2 { // (3-1) + 0 bonus (has failed)
		t.Errorf("score = %d, want 2", got)
	}
	e2 := &Entry{Successes: 3}
	if got := e2.Score(2); got != 5 { // (3-0) + 2
		t.Errorf("score = %d, want 5", got)
	}
}

func TestAlwaysSuccessfulRepairStaysBest(t *testing.T) {
	rs := mkRepairs(2)
	ev := New(rs, 1)
	for i := 0; i < 5; i++ {
		ev.RecordSuccess(rs[1].ID())
	}
	if ev.Best().Repair != rs[1] {
		t.Error("accumulated successes did not win")
	}
	// A single failure drops it below a fresh candidate only when the
	// score math says so: 5-1=4 vs 0+1=1, so it stays best.
	ev.RecordFailure(rs[1].ID())
	if ev.Best().Repair != rs[1] {
		t.Error("one failure after five successes should not demote")
	}
}

func TestExhausted(t *testing.T) {
	rs := mkRepairs(2)
	ev := New(rs, 1)
	if ev.Exhausted() {
		t.Fatal("fresh evaluator exhausted")
	}
	ev.RecordFailure(rs[0].ID())
	if ev.Exhausted() {
		t.Fatal("one untried candidate remains")
	}
	ev.RecordFailure(rs[1].ID())
	if !ev.Exhausted() {
		t.Fatal("all failed, none succeeded: must be exhausted")
	}
	// A success anywhere un-exhausts.
	ev2 := New(rs, 1)
	ev2.RecordFailure(rs[0].ID())
	ev2.RecordSuccess(rs[0].ID())
	ev2.RecordFailure(rs[1].ID())
	if ev2.Exhausted() {
		t.Fatal("a repair with a success is still worth deploying")
	}
}

func TestEmptyEvaluator(t *testing.T) {
	ev := New(nil, 1)
	if ev.Best() != nil {
		t.Error("Best of empty set")
	}
	if !ev.Exhausted() {
		t.Error("empty set must be exhausted")
	}
}

func TestUnsuccessfulRuns(t *testing.T) {
	rs := mkRepairs(3)
	ev := New(rs, 1)
	ev.RecordFailure(rs[0].ID())
	ev.RecordFailure(rs[1].ID())
	ev.RecordFailure(rs[0].ID())
	if got := ev.UnsuccessfulRuns(); got != 3 {
		t.Errorf("unsuccessful = %d, want 3", got)
	}
}

func TestDuplicateIDsCollapsed(t *testing.T) {
	rs := mkRepairs(1)
	ev := New([]*repair.Repair{rs[0], rs[0]}, 1)
	if ev.Len() != 1 {
		t.Errorf("len = %d, want 1", ev.Len())
	}
}

func TestBestIsMonotoneInScore(t *testing.T) {
	// Property: after any sequence of success/failure events, Best returns
	// an entry with the maximum score.
	f := func(events []bool, idx []uint8) bool {
		rs := mkRepairs(4)
		ev := New(rs, 1)
		for i, success := range events {
			if i >= len(idx) {
				break
			}
			id := rs[int(idx[i])%len(rs)].ID()
			if success {
				ev.RecordSuccess(id)
			} else {
				ev.RecordFailure(id)
			}
		}
		best := ev.Best()
		for _, e := range ev.Entries() {
			if e.Score(ev.Bonus) > best.Score(ev.Bonus) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
