package sim

import (
	"fmt"
	"time"

	"repro/internal/community"
)

// handler is the server half a loopback connection drives: the exported
// synchronous HandleEnvelope of a Manager, Aggregator, or RootGroup.
type handler func(env community.Envelope, bound *string) (community.Envelope, error)

// errTimeout mirrors a transport receive deadline expiring; it satisfies
// community.IsTimeout through the net.Error Timeout contract.
type errTimeout struct{}

func (errTimeout) Error() string   { return "sim: recv timed out" }
func (errTimeout) Timeout() bool   { return true }
func (errTimeout) Temporary() bool { return true }

// loopConn is the simulator's client-side Conn: Send invokes the
// server's handler inline on the caller's goroutine and queues the
// reply; Recv pops it. One loopConn replaces one Pipe plus one Serve
// goroutine — same handler, same per-connection sender binding, same
// token echo — which is what lets a simulated campaign drive real
// community tiers with no goroutine per connection.
//
// Because every exchange completes synchronously inside Send, an empty
// receive queue can never fill later. Recv with a deadline armed
// reports the timeout immediately (in virtual time — the same outcome a
// wall-clock wait would reach), and Recv with no deadline on an empty
// queue is a protocol bug reported loudly instead of a deadlock.
type loopConn struct {
	h       handler
	bound   string // per-connection sender identity (see bindSender)
	queue   []community.Envelope
	closed  bool
	timed   bool // a receive deadline is armed
	onClose func(*loopConn)
}

// Send hands the envelope to the server handler and queues the reply.
// A handler error closes the connection, mirroring a Serve loop's exit
// tearing down its transport: the client sees a dead wire and recovers
// through its retry path, exactly as it would against a live tier.
func (c *loopConn) Send(e community.Envelope) error {
	if c.closed {
		return fmt.Errorf("sim: send on closed loopback")
	}
	reply, err := c.h(e, &c.bound)
	if err != nil {
		c.close()
		return err
	}
	c.queue = append(c.queue, reply)
	return nil
}

// Recv pops the next queued reply. Queued envelopes beat the close,
// like the pipe transport's buffered-beats-close semantics.
func (c *loopConn) Recv() (community.Envelope, error) {
	if len(c.queue) > 0 {
		e := c.queue[0]
		c.queue = c.queue[1:]
		return e, nil
	}
	if c.closed {
		return community.Envelope{}, fmt.Errorf("sim: recv on closed loopback")
	}
	if c.timed {
		return community.Envelope{}, errTimeout{}
	}
	return community.Envelope{}, fmt.Errorf("sim: recv would block forever (no reply queued, no receive deadline)")
}

// SetRecvTimeout arms (d > 0) or disarms the receive deadline.
func (c *loopConn) SetRecvTimeout(d time.Duration) { c.timed = d > 0 }

func (c *loopConn) close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.onClose != nil {
		c.onClose(c)
	}
}

// Close marks the connection dead; already-queued replies stay readable.
func (c *loopConn) Close() error {
	c.close()
	return nil
}
