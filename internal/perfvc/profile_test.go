package perfvc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testProfile builds a minimal valid profile.
func testProfile(pr int) *Profile {
	return &Profile{
		Meta: Meta{
			PR: pr, Title: "test", Date: "2026-08-08", CPU: "x", Go: "go1.24.0",
			Regenerate: []string{"go run ./cmd/perfvc record -pr 7"},
		},
		Benchmarks: map[string]Bench{
			"BenchmarkA": {Package: ".", Entry: "BenchmarkA", Metrics: map[string]Stat{
				"ns/op": {Median: 100, Min: 95, Max: 105, Samples: 3},
			}},
		},
	}
}

// TestProfileSaveLoadRoundTrip checks Save/Load preserve the profile and
// that Load rejects files that are not perfvc profiles.
func TestProfileSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_pr7.json")
	if err := Save(path, testProfile(7)); err != nil {
		t.Fatal(err)
	}
	p, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Meta.PR != 7 || p.Benchmarks["BenchmarkA"].Metrics["ns/op"].Median != 100 {
		t.Errorf("round trip lost data: %+v", p)
	}
	if err := p.Validate(3); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}

	// A JSON file without a benchmarks section (the BENCH_pr6 telemetry
	// shape) must be rejected, not silently loaded empty.
	other := filepath.Join(dir, "other.json")
	os.WriteFile(other, []byte(`{"meta": {"pr": 6}, "stages": {}}`), 0o644)
	if _, err := Load(other); err == nil {
		t.Error("Load accepted a profile with no benchmarks section")
	}
}

// TestProfileValidate sweeps the baseline-contract violations.
func TestProfileValidate(t *testing.T) {
	mutate := func(f func(*Profile)) error {
		p := testProfile(7)
		f(p)
		return p.Validate(3)
	}
	cases := []struct {
		name string
		f    func(*Profile)
		want string
	}{
		{"missing pr", func(p *Profile) { p.Meta.PR = 0 }, "meta.pr"},
		{"missing date", func(p *Profile) { p.Meta.Date = "" }, "meta.date"},
		{"missing regenerate", func(p *Profile) { p.Meta.Regenerate = nil }, "regenerate"},
		{"no benchmarks", func(p *Profile) { p.Benchmarks = nil }, "no benchmarks"},
		{"too few samples", func(p *Profile) {
			p.Benchmarks["BenchmarkA"].Metrics["ns/op"] = Stat{Median: 1, Min: 1, Max: 1, Samples: 2}
		}, "samples"},
		{"inverted stats", func(p *Profile) {
			p.Benchmarks["BenchmarkA"].Metrics["ns/op"] = Stat{Median: 200, Min: 95, Max: 105, Samples: 3}
		}, "median"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := mutate(tc.f)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestLatestBaseline checks the highest-numbered committed BENCH file
// wins and non-profile BENCH files are skipped, not fatal.
func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	if err := Save(filepath.Join(dir, "BENCH_pr3.json"), testProfile(3)); err != nil {
		t.Fatal(err)
	}
	if err := Save(filepath.Join(dir, "BENCH_pr7.json"), testProfile(7)); err != nil {
		t.Fatal(err)
	}
	// A legacy telemetry BENCH file with no benchmarks section sits in
	// the lineage but is not a loadable baseline.
	os.WriteFile(filepath.Join(dir, "BENCH_pr6.json"), []byte(`{"meta":{"pr":6},"stages":{}}`), 0o644)
	os.WriteFile(filepath.Join(dir, "BENCH_notes.json"), []byte(`{}`), 0o644)

	p, path, err := LatestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if p.Meta.PR != 7 || filepath.Base(path) != "BENCH_pr7.json" {
		t.Errorf("latest = pr %d from %s", p.Meta.PR, path)
	}

	if _, _, err := LatestBaseline(t.TempDir()); err == nil {
		t.Error("empty dir produced a baseline")
	}
}

// TestConvertLegacy checks the PR 3 backfill shape converts to
// single-sample stats and wrong shapes are rejected.
func TestConvertLegacy(t *testing.T) {
	data := []byte(`{
		"meta": {"pr": 3, "date": "2026-07-20"},
		"before": {"BenchmarkDispatchHot": {"ns_op": 515.0, "mips": 17.8}},
		"after": {
			"BenchmarkDispatchHot": {"ns_op": 77.65, "mips": 115.9, "allocs_op": 0},
			"environment": {}
		}
	}`)
	p, err := ConvertLegacy(data, "after")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Benchmarks) != 1 {
		t.Fatalf("converted %d benchmarks, want 1 (non-Benchmark keys dropped)", len(p.Benchmarks))
	}
	hot := p.Benchmarks["BenchmarkDispatchHot"]
	if hot.Package != "./internal/vm" {
		t.Errorf("registry did not resolve package: %+v", hot)
	}
	ns := hot.Metrics["ns/op"]
	if ns.Median != 77.65 || ns.Min != 77.65 || ns.Max != 77.65 || ns.Samples != 1 {
		t.Errorf("ns/op = %+v, want single-sample 77.65", ns)
	}
	if hot.Metrics["MIPS"].Median != 115.9 {
		t.Errorf("MIPS = %+v", hot.Metrics["MIPS"])
	}

	before, err := ConvertLegacy(data, "before")
	if err != nil {
		t.Fatal(err)
	}
	// before → after is the PR 3 dispatch rewrite: a clear improvement.
	rep := Compare(before, p, Options{Suite: Registry()})
	if rep.Improvements != 1 || rep.Regressions != 0 {
		t.Errorf("pr3 before→after = %+v", rep.Deltas)
	}

	if _, err := ConvertLegacy(data, "sideways"); err == nil {
		t.Error("unknown section accepted")
	}
	if _, err := ConvertLegacy([]byte(`{"meta":{"pr":6},"stages":{}}`), "after"); err == nil {
		t.Error("telemetry shape accepted")
	}
}
