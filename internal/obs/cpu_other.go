//go:build !unix

package obs

import "time"

// ProcessCPU is unavailable off unix; callers fall back to wall-only
// reporting.
func ProcessCPU() (user, system time.Duration, ok bool) { return 0, 0, false }
