package repro_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// doclintPackages are the packages held to the exported-documentation
// standard (the community protocol and the recording wire format cross
// trust and process boundaries, so their exported surface is API).
// Extend this list as packages stabilize.
var doclintPackages = []string{
	"internal/community",
	"internal/perfvc",
	"internal/replay",
}

// TestExportedIdentifiersDocumented is the `revive exported` equivalent,
// enforced at tier-1 with no external tooling: every exported type,
// function, method, variable, constant — and every exported field of an
// exported struct — in the listed packages must carry a doc comment.
func TestExportedIdentifiersDocumented(t *testing.T) {
	for _, dir := range doclintPackages {
		t.Run(dir, func(t *testing.T) {
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for _, pkg := range pkgs {
				for _, file := range pkg.Files {
					for _, decl := range file.Decls {
						for _, miss := range undocumented(decl) {
							pos := fset.Position(miss.pos)
							t.Errorf("%s:%d: exported %s is undocumented", pos.Filename, pos.Line, miss.what)
						}
					}
				}
			}
		})
	}
}

// missing is one undocumented exported identifier.
type missing struct {
	what string
	pos  token.Pos
}

// undocumented collects the exported identifiers of one top-level
// declaration that lack a doc comment.
func undocumented(decl ast.Decl) []missing {
	var out []missing
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || exportedReceiver(d) == "" {
			return nil
		}
		if d.Doc == nil {
			out = append(out, missing{
				what: strings.TrimSpace("func "+exportedReceiver(d)) + " " + d.Name.Name,
				pos:  d.Pos(),
			})
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				if d.Doc == nil && s.Doc == nil {
					out = append(out, missing{what: "type " + s.Name.Name, pos: s.Pos()})
				}
				if st, ok := s.Type.(*ast.StructType); ok {
					out = append(out, undocumentedFields(s.Name.Name, st)...)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					// A doc comment on the grouped decl covers the whole
					// const/var block (the iota-enum idiom documents each
					// member individually or the block as a whole).
					if d.Doc == nil && s.Doc == nil && s.Comment == nil {
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						out = append(out, missing{what: kind + " " + name.Name, pos: name.Pos()})
					}
				}
			}
		}
	}
	return out
}

// undocumentedFields collects the exported, uncommented fields of an
// exported struct (a trailing line comment counts as documentation).
func undocumentedFields(typeName string, st *ast.StructType) []missing {
	var out []missing
	for _, f := range st.Fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				out = append(out, missing{
					what: fmt.Sprintf("field %s.%s", typeName, name.Name),
					pos:  name.Pos(),
				})
			}
		}
	}
	return out
}

// exportedReceiver renders a method's receiver type prefix ("(Foo) ") and
// reports whether the method belongs to the exported surface: plain
// functions return " " (exported), methods on unexported receivers "".
func exportedReceiver(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return " "
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok || !id.IsExported() {
		return ""
	}
	return "(" + id.Name + ") "
}
